// Regenerates paper Figures 6-7: the strip decomposition of the SOR grid
// and the "program skew" effect — a delay on one processor propagates to
// its neighbours at one strip per iteration, retarding the whole
// computation by at most P iterations later.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "sor/distributed.hpp"
#include "support/ascii_plot.hpp"
#include "support/table.hpp"

namespace {
using namespace sspred;
}

int main() {
  bench::banner("Figures 6-7", "strip decomposition and program skew");

  bench::section("Figure 6 — strip decomposition (uniform and weighted)");
  const auto uniform = sor::StripDecomposition::uniform(16, 4);
  const std::vector<double> capacity{1.0, 2.5, 2.5, 4.0};
  const auto weighted = sor::StripDecomposition::weighted(16, capacity);
  support::Table t({"rank", "uniform rows", "weighted rows (cap 1:2.5:2.5:4)"});
  for (std::size_t r = 0; r < 4; ++r) {
    t.add_row({"P" + std::to_string(r + 1),
               "rows " + std::to_string(uniform.begin(r)) + ".." +
                   std::to_string(uniform.end(r) - 1),
               "rows " + std::to_string(weighted.begin(r)) + ".." +
                   std::to_string(weighted.end(r) - 1)});
  }
  std::cout << t.render();

  bench::section("Figure 7 — skew propagation experiment");
  // A dedicated platform, but rank 0 starts 5 virtual seconds late.
  sor::SorConfig cfg;
  cfg.n = 256;
  cfg.iterations = 12;
  cfg.real_numerics = false;
  cfg.rank0_initial_delay = 5.0;

  sim::Engine engine;
  cluster::Platform platform(engine, cluster::dedicated_platform(4), 11);
  const auto delayed = sor::run_distributed_sor(engine, platform, cfg);

  sor::SorConfig base_cfg = cfg;
  base_cfg.rank0_initial_delay = 0.0;
  sim::Engine engine2;
  cluster::Platform platform2(engine2, cluster::dedicated_platform(4), 11);
  const auto base = sor::run_distributed_sor(engine2, platform2, base_cfg);

  std::cout << "rank 0 delayed by 5.0 s; per-rank per-iteration lag vs the "
               "undelayed run (s):\n\n  iter";
  for (std::size_t r = 0; r < 4; ++r) std::printf("   rank%zu", r);
  std::cout << "\n";
  for (std::size_t it = 0; it < cfg.iterations; ++it) {
    std::printf("  %4zu", it);
    for (std::size_t r = 0; r < 4; ++r) {
      const double lag = delayed.ranks[r].iteration_end[it] -
                         base.ranks[r].iteration_end[it];
      std::printf("  %6.2f", lag);
    }
    std::cout << "\n";
  }

  bench::section("shape check vs paper");
  // Neighbour lag appears with a one-iteration-per-hop wavefront.
  const double r3_lag_it0 = delayed.ranks[3].iteration_end[0] -
                            base.ranks[3].iteration_end[0];
  const double r3_lag_last = delayed.ranks[3].iteration_end.back() -
                             base.ranks[3].iteration_end.back();
  bench::compare_line("far rank lag at iteration 0", "~0 (wave not arrived)",
                      support::fmt(r3_lag_it0, 2) + " s");
  bench::compare_line("far rank lag at final iteration", "~5 s (full delay)",
                      support::fmt(r3_lag_last, 2) + " s");
  bench::compare_line("total-time penalty", "~the injected 5 s",
                      support::fmt(delayed.total_time - base.total_time, 2) +
                          " s");
  std::cout << "\nDelays propagate one strip per iteration — the loose "
               "synchronization the\npaper depicts in Figure 7.\n";
  return 0;
}
