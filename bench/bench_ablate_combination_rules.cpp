// Ablation A1: the dependence regimes in the SOR structural model.
//
// The paper leaves a design choice open: when stochastic values are
// combined across iterations and across phases, should the conservative
// (related) or RSS (unrelated) rules apply? This bench sweeps the four
// combinations on the bursty Platform-2 workload and reports the
// interval-width vs capture trade-off.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "predict/experiment.hpp"
#include "support/table.hpp"

namespace {
using namespace sspred;
using stoch::Dependence;

const char* dep_name(Dependence d) {
  return d == Dependence::kRelated ? "related" : "unrelated";
}
}  // namespace

int main() {
  bench::banner("Ablation A1",
                "related (conservative) vs unrelated (RSS) combination "
                "rules in the SOR model");

  support::Table t({"iteration dep", "phase dep", "rel. interval width",
                    "capture", "max range err", "max point err"});

  for (const auto iter_dep : {Dependence::kRelated, Dependence::kUnrelated}) {
    for (const auto phase_dep :
         {Dependence::kRelated, Dependence::kUnrelated}) {
      predict::SeriesConfig cfg;
      cfg.platform = cluster::platform2();
      cfg.sor.n = 1000;
      cfg.sor.iterations = 15;
      cfg.sor.real_numerics = false;
      cfg.trials = 12;
      cfg.spacing = 200.0;
      cfg.load_source = predict::LoadParameterSource::kNwsForecast;
      cfg.bwavail = stoch::StochasticValue::from_mean_sd(0.525, 0.06);
      cfg.model.iteration_dependence = iter_dep;
      cfg.model.phase_dependence = phase_dep;

      const auto outcomes = run_series(cfg);
      const auto s = predict::score(outcomes);
      double rel_width = 0.0;
      for (const auto& o : outcomes) {
        rel_width += o.predicted.halfwidth() / o.predicted.mean();
      }
      rel_width /= static_cast<double>(outcomes.size());

      t.add_row({dep_name(iter_dep), dep_name(phase_dep),
                 "±" + support::fmt_pct(rel_width, 1),
                 support::fmt_pct(s.capture_fraction, 0),
                 support::fmt_pct(s.max_range_error, 1),
                 support::fmt_pct(s.max_mean_error, 1)});
    }
  }
  std::cout << "\n" << t.render();

  bench::section("reading");
  std::cout
      << "  * Related iteration accumulation (the paper's regime: load "
         "persists for\n    the whole run) keeps intervals wide enough to "
         "capture bursty actuals.\n"
      << "  * Unrelated iteration accumulation shrinks the interval by "
         "~sqrt(NumIts)\n    and forfeits capture — iteration noise does "
         "NOT average out when the\n    underlying load is persistent.\n";
  return 0;
}
