// Statistically rigorous timing measurement for the bench harness.
//
// Replaces "run N reps, take the best" with "measure until the CI is
// tight": samples accrue until the confidence interval on the mean —
// computed over warm-up-trimmed samples with an
// autocorrelation-corrected effective sample size — meets a relative
// precision target, or a rep/wall-clock budget runs out (in the spirit
// of pilot-bench and the uncertainty treatment in arXiv 1801.04644).
//
// The analysis (`analyze`) is a pure function of the sample vector, so
// given the same timings it reproduces the same verdict; only the
// timings themselves vary run to run.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <string>
#include <vector>

namespace sspred::bench {

struct MeasureOptions {
  double rel_precision = 0.02;  ///< stop when ci_halfwidth <= this * |mean|
  double confidence_z = 2.0;    ///< CI half-width = z * sd / sqrt(n_eff)
  std::size_t min_samples = 10;   ///< floor before the precision stop
  std::size_t max_samples = 300;  ///< hard cap on timed reps
  double max_seconds = 2.0;       ///< wall-clock budget for the timed loop
};

/// One rigorous measurement: the trimmed-sample summary plus how the
/// stopping rule got there.
struct Measurement {
  double mean = 0.0;          ///< mean over the kept (post-warm-up) samples
  double sd = 0.0;            ///< sample sd over the kept samples
  double ci_halfwidth = 0.0;  ///< z * sd / sqrt(effective_samples)
  double min = 0.0;           ///< fastest kept sample
  std::size_t samples = 0;           ///< kept samples
  std::size_t warmup_discarded = 0;  ///< leading samples trimmed
  double lag1_autocorr = 0.0;        ///< over the kept samples
  double effective_samples = 0.0;    ///< n * (1 - rho) / (1 + rho)
  bool converged = false;  ///< precision target met within the budgets

  /// "12.3us ±2.1% (n=34, warmup 3, ess 28.1)" — for bench table rows.
  [[nodiscard]] std::string summary(double scale = 1e6,
                                    const std::string& unit = "us") const;
};

/// Pure analysis of an ordered sample vector: deterministic warm-up trim
/// (the maximal leading run of samples above the Tukey upper fence of
/// the second half, capped at half the samples), lag-1 autocorrelation
/// ESS correction (positive rho only), and the CI verdict against
/// `options.rel_precision`.
[[nodiscard]] Measurement analyze(std::span<const double> samples,
                                  const MeasureOptions& options);

/// Runs `once` (returning one duration/measurement in seconds) until the
/// analysis converges or the rep/time budget is spent. `once` is invoked
/// at least min_samples times (budget permitting) and at most
/// max_samples times.
[[nodiscard]] Measurement measure_until(const std::function<double()>& once,
                                        const MeasureOptions& options = {});

}  // namespace sspred::bench
