// Ablation A2: the group-Max policy (§2.3.3).
//
// The paper discusses calculating Max by largest mean or by largest range
// value and leaves the choice situation-dependent. This bench compares
// both plus Clark's Gaussian moment-matching approximation, on the same
// prediction workload, and directly against Monte-Carlo ground truth of
// the max of heterogeneous per-rank times.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "predict/experiment.hpp"
#include "stoch/group_ops.hpp"
#include "stoch/montecarlo.hpp"
#include "support/table.hpp"

namespace {
using namespace sspred;
using stoch::ExtremePolicy;

const char* policy_name(ExtremePolicy p) {
  switch (p) {
    case ExtremePolicy::kLargestMean:
      return "largest-mean";
    case ExtremePolicy::kLargestUpper:
      return "largest-upper";
    case ExtremePolicy::kClark:
      return "clark";
  }
  return "?";
}
}  // namespace

int main() {
  bench::banner("Ablation A2", "group-Max policies for stochastic values");

  bench::section("micro view: max of the paper's A=4±0.5, B=3±2, C=3±1");
  const std::vector<stoch::StochasticValue> abc{{4.0, 0.5}, {3.0, 2.0},
                                                {3.0, 1.0}};
  support::Rng rng(3);
  // Monte-Carlo ground truth of max(A,B,C).
  std::vector<double> maxima;
  for (int i = 0; i < 200'000; ++i) {
    double m = -1e18;
    for (const auto& v : abc) m = std::max(m, stoch::sample(v, rng));
    maxima.push_back(m);
  }
  const auto truth = stoch::StochasticValue::from_sample(maxima);
  support::Table micro({"policy", "result", "mean err vs MC"});
  for (auto p : {ExtremePolicy::kLargestMean, ExtremePolicy::kLargestUpper,
                 ExtremePolicy::kClark}) {
    const auto r = stoch::smax(abc, p);
    micro.add_row({policy_name(p), r.to_string(3),
                   support::fmt_pct(
                       std::abs(r.mean() - truth.mean()) / truth.mean(), 1)});
  }
  micro.add_row({"monte-carlo truth", truth.to_string(3), "-"});
  std::cout << micro.render();

  bench::section("macro view: SOR prediction quality per policy (Platform 2)");
  support::Table t({"policy", "capture", "max range err", "mean interval"});
  for (auto policy : {ExtremePolicy::kLargestMean, ExtremePolicy::kLargestUpper,
                      ExtremePolicy::kClark}) {
    predict::SeriesConfig cfg;
    cfg.platform = cluster::platform2();
    cfg.sor.n = 1000;
    cfg.sor.iterations = 15;
    cfg.sor.real_numerics = false;
    cfg.trials = 12;
    cfg.spacing = 200.0;
    cfg.load_source = predict::LoadParameterSource::kNwsForecast;
    cfg.bwavail = stoch::StochasticValue::from_mean_sd(0.525, 0.06);
    cfg.model.max_policy = policy;

    const auto outcomes = run_series(cfg);
    const auto s = predict::score(outcomes);
    double width = 0.0;
    for (const auto& o : outcomes) width += o.predicted.halfwidth();
    width /= static_cast<double>(outcomes.size());
    t.add_row({policy_name(policy), support::fmt_pct(s.capture_fraction, 0),
               support::fmt_pct(s.max_range_error, 1),
               "±" + support::fmt(width, 1) + " s"});
  }
  std::cout << t.render();

  bench::section("reading");
  std::cout << "  * largest-mean (the paper's default reading) tracks the "
               "dominant slow rank.\n"
            << "  * Clark's approximation is the most faithful to the true "
               "max when ranks\n    are closely matched; with one dominant "
               "rank all three coincide.\n";
  return 0;
}
