// Ablation A3: the NWS forecaster bank vs any single fixed forecaster.
//
// The paper takes run-time load stochastic values from the Network Weather
// Service, whose defining feature is dynamic best-predictor selection.
// This bench postcasts a bursty Platform-2 load trace with every
// forecaster and with dynamic selection, and reports one-step prediction
// RMSE.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "cluster/platform.hpp"
#include "machine/load_trace.hpp"
#include "nws/forecasters.hpp"
#include "nws/service.hpp"
#include "support/table.hpp"

namespace {
using namespace sspred;
}

int main() {
  bench::banner("Ablation A3",
                "NWS dynamic forecaster selection vs fixed forecasters");

  // A long bursty load history sampled at the NWS's 5 s period.
  const machine::LoadTrace trace = machine::LoadTrace::generate(
      cluster::platform2_load(), 4'000, 5.0, 13);
  const auto samples = trace.samples();
  const std::vector<double> xs(samples.begin(), samples.end());

  const auto bank = nws::default_bank();
  constexpr std::size_t kWindow = 120;  // 10 minutes of history per forecast
  constexpr std::size_t kWarmup = 16;

  std::vector<double> fixed_se(bank.size(), 0.0);
  double dynamic_se = 0.0;
  std::size_t dynamic_switches = 0;
  std::string last_winner;
  std::size_t evals = 0;

  for (std::size_t t = kWindow; t + 1 < xs.size(); t += 7) {
    const std::span<const double> history(xs.data() + t - kWindow, kWindow);
    const double actual_next = xs[t];

    // Fixed forecasters.
    for (std::size_t f = 0; f < bank.size(); ++f) {
      const double err = bank[f]->predict(history) - actual_next;
      fixed_se[f] += err * err;
    }

    // Dynamic selection: postcast inside the window, pick the best.
    std::size_t best = 0;
    double best_mse = 1e300;
    for (std::size_t f = 0; f < bank.size(); ++f) {
      double se = 0.0;
      std::size_t n = 0;
      for (std::size_t i = kWarmup; i < history.size(); ++i) {
        const double err =
            bank[f]->predict(history.subspan(0, i)) - history[i];
        se += err * err;
        ++n;
      }
      const double mse = se / static_cast<double>(n);
      if (mse < best_mse) {
        best_mse = mse;
        best = f;
      }
    }
    const double err = bank[best]->predict(history) - actual_next;
    dynamic_se += err * err;
    if (bank[best]->name() != last_winner) {
      if (!last_winner.empty()) ++dynamic_switches;
      last_winner = bank[best]->name();
    }
    ++evals;
  }

  support::Table t({"forecaster", "one-step RMSE"});
  double best_fixed = 1e300;
  for (std::size_t f = 0; f < bank.size(); ++f) {
    const double rmse = std::sqrt(fixed_se[f] / static_cast<double>(evals));
    best_fixed = std::min(best_fixed, rmse);
    t.add_row({bank[f]->name(), support::fmt(rmse, 4)});
  }
  const double dyn_rmse = std::sqrt(dynamic_se / static_cast<double>(evals));
  t.add_row({"DYNAMIC (NWS selection)", support::fmt(dyn_rmse, 4)});
  std::cout << "\n" << t.render();

  bench::section("reading");
  std::printf("  evaluations: %zu, winner changed %zu times\n", evals,
              dynamic_switches);
  bench::compare_line("dynamic vs best fixed RMSE",
                      "competitive with the best",
                      support::fmt(dyn_rmse, 4) + " vs " +
                          support::fmt(best_fixed, 4));
  std::cout << "  Dynamic selection needs no a-priori knowledge of which "
               "fixed forecaster\n  suits the trace — the NWS design point "
               "this library reproduces.\n";
  return 0;
}
