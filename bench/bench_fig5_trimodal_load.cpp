// Regenerates paper Figure 5: the tri-modal CPU-load histogram of a
// production workstation (Platform 1), and verifies that the modal
// analysis pipeline (GMM + KDE) recovers the planted modes the way the
// paper's by-eye analysis identified them.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "cluster/platform.hpp"
#include "machine/load_trace.hpp"
#include "stats/gmm.hpp"
#include "stats/histogram.hpp"
#include "stats/kde.hpp"
#include "stoch/modes.hpp"
#include "support/ascii_plot.hpp"
#include "support/table.hpp"

namespace {
using namespace sspred;
}

int main() {
  bench::banner("Figure 5",
                "tri-modal CPU load on a production workstation + modal "
                "analysis");

  const auto spec = cluster::platform1_load();
  const machine::LoadTrace trace =
      machine::LoadTrace::generate(spec, 40'000, 1.0, 5);
  const std::vector<double> xs(trace.samples().begin(),
                               trace.samples().end());

  bench::section("load histogram (paper Fig. 5)");
  const stats::Histogram hist(0.0, 1.0, 25);
  stats::Histogram mutable_hist = hist;
  mutable_hist.add_all(xs);
  const auto edges = mutable_hist.edges();
  const auto counts = mutable_hist.counts_as_double();
  support::PlotOptions opts;
  opts.x_label = "CPU load (availability fraction)";
  std::cout << support::render_histogram(edges, counts, opts);

  bench::section("mode count via KDE density peaks (the paper's by-eye read)");
  const stats::Kde kde(xs);
  const auto peaks = kde.peaks(512, 0.08);
  for (const auto& p : peaks) {
    std::printf("  peak at load %.3f (density %.2f)\n", p.location, p.density);
  }
  bench::compare_line("number of modes", "3", std::to_string(peaks.size()));

  bench::section("mode parameters via Gaussian mixture at k = 3");
  // (BIC-driven selection splits the long-tailed centre mode into extra
  // Gaussians — expected, since that mode is not Gaussian; the KDE peak
  // count above is the faithful analogue of the paper's reading.)
  const auto fit = stats::fit_gmm(xs, peaks.size() >= 2 ? 3 : 1);
  support::Table t({"mode", "planted center", "fit mean", "fit sd",
                    "fit weight"});
  const std::vector<double> planted{0.33, 0.48, 0.94};
  for (std::size_t i = 0; i < fit.components.size(); ++i) {
    const auto& c = fit.components[i];
    t.add_row({"mode " + std::to_string(i + 1),
               i < planted.size() ? support::fmt(planted[i], 2) : "-",
               support::fmt(c.mean, 3), support::fmt(c.sd, 3),
               support::fmt(c.weight, 3)});
  }
  std::cout << t.render();

  bench::section("modal stochastic values (paper §2.1.2)");
  const auto modes = stoch::modes_from_gmm(fit);
  for (std::size_t i = 0; i < modes.size(); ++i) {
    std::printf("  mode %zu: occupancy %.2f, value %s\n", i + 1,
                modes[i].occupancy, modes[i].value.to_string(3).c_str());
  }
  const auto mixed = stoch::mix_modes(modes);
  const auto moments = stoch::mixture_moments(modes);
  std::printf("  time-weighted modal average (paper formula): %s\n",
              mixed.to_string(3).c_str());
  std::printf("  exact mixture moments (law of total variance): %s\n",
              moments.to_string(3).c_str());
  return 0;
}
