// The memory boundary of paper Fig. 9: "execution time measurements fall
// entirely within the stochastic prediction ... for problem sizes which
// fit within main memory."
//
// This bench sweeps problem sizes across the slowest host's memory
// capacity: in-core the paper's model tracks the runs; beyond it the
// plain model underpredicts badly, and the memory-aware extension
// (SorModelOptions::account_memory) restores accuracy.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "predict/sor_model.hpp"
#include "sor/distributed.hpp"
#include "support/table.hpp"

namespace {
using namespace sspred;
}

int main() {
  bench::banner("Fig. 9 memory boundary",
                "prediction validity ends at main memory — and the "
                "memory-aware model extends it");

  // Dedicated platform, memory shrunk so the boundary falls mid-sweep.
  cluster::PlatformSpec spec = cluster::dedicated_platform(4);
  for (auto& h : spec.hosts) h.machine.memory_elements = 450'000.0;
  const std::vector<stoch::StochasticValue> loads(
      4, stoch::StochasticValue(1.0));

  support::Table t({"grid", "strip working set", "fits?", "actual (s)",
                    "paper model", "err", "memory-aware", "err"});

  for (const std::size_t n : {600, 800, 1000, 1200, 1400, 1600}) {
    sor::SorConfig cfg;
    cfg.n = n;
    cfg.iterations = 10;
    cfg.real_numerics = false;

    const auto rows = n / 4;
    const double working_set =
        2.0 * static_cast<double>(rows + 2) * (static_cast<double>(n) + 2.0);
    const bool fits = working_set <= spec.hosts[0].machine.memory_elements;

    predict::SorModelOptions plain;
    plain.account_memory = false;
    const predict::SorStructuralModel paper_model(spec, cfg, plain);
    const double paper_pred =
        paper_model.predict_point(paper_model.make_env(loads, {1.0}));

    predict::SorModelOptions aware;
    aware.account_memory = true;
    const predict::SorStructuralModel mem_model(spec, cfg, aware);
    const double mem_pred =
        mem_model.predict_point(mem_model.make_env(loads, {1.0}));

    sim::Engine engine;
    cluster::Platform platform(engine, spec, 21);
    const double actual =
        sor::run_distributed_sor(engine, platform, cfg).total_time;

    t.add_row({std::to_string(n) + "x" + std::to_string(n),
               support::fmt(working_set / 1e3, 0) + "k elts",
               fits ? "yes" : "NO", support::fmt(actual, 2),
               support::fmt(paper_pred, 2),
               support::fmt_pct(std::abs(paper_pred - actual) / actual, 1),
               support::fmt(mem_pred, 2),
               support::fmt_pct(std::abs(mem_pred - actual) / actual, 1)});
  }
  std::cout << "\nhosts: 4x sparc10, memory capped at 450k elements\n\n"
            << t.render();

  bench::section("reading");
  std::cout
      << "  * In-core rows: both models are within ~1% (the paper's Fig. 9 "
         "regime).\n"
      << "  * Past the boundary the paper model's error explodes — exactly "
         "why the\n    paper scopes its claim to problem sizes that fit in "
         "main memory.\n"
      << "  * account_memory folds the host's thrashing curve into the "
         "compute\n    components and stays accurate on both sides.\n";
  return 0;
}
