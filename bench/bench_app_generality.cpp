// Ablation A7: structural modeling beyond SOR — the Jacobi application.
//
// Structural models are meant to be composed per application from
// component models. This bench builds the Jacobi model (one sweep + one
// exchange per iteration), validates it on the dedicated platform, and
// runs the stochastic predict-then-execute loop on Platform 1.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "nws/sensor.hpp"
#include "nws/service.hpp"
#include "predict/sor_model.hpp"
#include "sor/cg.hpp"
#include "sor/jacobi.hpp"
#include "support/table.hpp"

namespace {
using namespace sspred;
}

int main() {
  bench::banner("Ablation A7",
                "structural modeling generalizes: the Jacobi application");

  bench::section("dedicated validation (the 2% check, Jacobi edition)");
  support::Table t({"grid", "predicted (s)", "actual (s)", "error"});
  double worst = 0.0;
  for (const std::size_t n : {600, 1000, 1600}) {
    sor::JacobiConfig cfg;
    cfg.n = n;
    cfg.iterations = 20;
    cfg.real_numerics = false;
    const auto spec = cluster::dedicated_platform(4);
    const predict::JacobiStructuralModel model(spec, n, cfg.iterations);
    const std::vector<stoch::StochasticValue> loads(
        4, stoch::StochasticValue(1.0));
    const double predicted =
        model.predict_point(model.make_env(loads, {1.0}));
    sim::Engine engine;
    cluster::Platform platform(engine, spec, 51);
    const double actual =
        sor::run_distributed_jacobi(engine, platform, cfg).total_time;
    const double err = std::abs(predicted - actual) / actual;
    worst = std::max(worst, err);
    t.add_row({std::to_string(n) + "x" + std::to_string(n),
               support::fmt(predicted, 2), support::fmt(actual, 2),
               support::fmt_pct(err, 2)});
  }
  std::cout << t.render();
  bench::compare_line("max dedicated error", "< 2% (like SOR)",
                      support::fmt_pct(worst, 2));

  bench::section("stochastic predictions on Platform 1");
  const auto spec = cluster::platform1();
  support::Table t2({"trial", "stochastic prediction", "actual", "captured?"});
  std::size_t captured = 0;
  const std::size_t trials = 6;
  sim::Engine engine;
  cluster::PlatformSpec pspec = spec;
  pspec.trace_duration = 6'000.0;
  cluster::Platform platform(engine, pspec, 53);
  for (std::size_t i = 0; i < trials; ++i) {
    const double start = 400.0 + 700.0 * static_cast<double>(i);
    // Loads as recent-window stochastic values (single-mode regime).
    std::vector<stoch::StochasticValue> loads;
    for (std::size_t p = 0; p < platform.size(); ++p) {
      std::vector<double> window;
      for (double tt = start - 300.0; tt < start; tt += 5.0) {
        window.push_back(platform.machine(p).availability(tt));
      }
      loads.push_back(stoch::StochasticValue::from_sample(window));
    }
    sor::JacobiConfig cfg;
    cfg.n = 1000;
    cfg.iterations = 15;
    cfg.real_numerics = false;
    const predict::JacobiStructuralModel model(spec, cfg.n, cfg.iterations);
    const auto pred = model.predict(model.make_env(loads, {0.525, 0.12}));
    const double actual =
        sor::run_distributed_jacobi(engine, platform, cfg,
                                    std::max(start, engine.now()))
            .total_time;
    if (pred.contains(actual)) ++captured;
    t2.add_row({std::to_string(i + 1), pred.to_string(1) + " s",
                support::fmt(actual, 1) + " s",
                pred.contains(actual) ? "yes" : "NO"});
  }
  std::cout << t2.render();
  bench::compare_line(
      "capture on the single-mode platform", "high (like SOR Fig. 9)",
      support::fmt_pct(static_cast<double>(captured) / trials, 0));

  bench::section("a third pattern: Conjugate Gradient (collective-bound)");
  // CG adds two allreduces per iteration — latency-bound collectives,
  // unlike SOR/Jacobi's bandwidth-bound neighbour exchanges.
  support::Table t3({"grid", "compute share", "ghost share",
                     "collective share", "converged residual"});
  for (const std::size_t n : {64, 256, 1024}) {
    sor::CgConfig cfg;
    cfg.n = n;
    cfg.max_iterations = 40;
    sim::Engine engine2;
    cluster::Platform platform2(engine2, cluster::dedicated_platform(4), 57);
    const auto r = sor::run_distributed_cg(engine2, platform2, cfg);
    const auto& [comp, ghost, coll] = r.rank_totals[1];
    const double total = comp + ghost + coll;
    t3.add_row({std::to_string(n) + "x" + std::to_string(n),
                support::fmt_pct(comp / total, 0),
                support::fmt_pct(ghost / total, 0),
                support::fmt_pct(coll / total, 0),
                support::fmt(r.residual, 6)});
  }
  std::cout << t3.render();
  std::cout << "  Small grids are collective-latency bound; large grids are "
               "compute bound —\n  a different comm regime the same substrate "
               "exposes for modeling.\n";

  std::cout << "\nThe same component-model vocabulary (benchmark/op-count "
               "compute, shared-\nsegment comm, stochastic load) assembles "
               "a faithful model for different\napplications — structural "
               "modeling is not SOR-specific.\n";
  return 0;
}
