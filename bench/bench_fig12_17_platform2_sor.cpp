// Regenerates paper Figures 12-17 (Platform 2, §3.2): repeated SOR runs
// under bursty load at problem sizes 1000, 1600 and 2000, each trial
// predicted from run-time NWS stochastic load values.
//
// Paper claims reproduced in shape (Fig. 12-13, N=1600): ~80% of actual
// execution times inside the stochastic range with max out-of-range error
// ~14%, versus a ~38.6% max error for the point (mean) predictions. The
// other sizes (Figs. 14-17) behave the same way.
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "predict/experiment.hpp"
#include "support/ascii_plot.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"

namespace {

using namespace sspred;

void run_size(std::size_t n, const char* figures) {
  predict::SeriesConfig cfg;
  cfg.platform = cluster::platform2();
  cfg.sor.n = n;
  cfg.sor.iterations = 15;
  cfg.sor.real_numerics = false;
  cfg.trials = 16;
  cfg.spacing = 200.0;
  // Per-trial stochastic load values from the NWS at run time (paper
  // §3.2); the forecast's postcast error spread supplies the ± term.
  // For the largest size the run outlasts the load bursts, and the paper
  // (§2.1.2) prescribes the occupancy-weighted modal average for
  // long-running applications — so N=2000 switches estimator.
  const bool long_running = n >= 2000;
  cfg.load_source = long_running
                        ? predict::LoadParameterSource::kModalMix
                        : predict::LoadParameterSource::kNwsForecast;
  cfg.history_window = long_running ? 600.0 : 300.0;
  cfg.bwavail = stoch::StochasticValue::from_mean_sd(0.525, 0.06);
  cfg.seed = 20260707 + n;

  bench::section(std::string(figures) + " — problem size " +
                 std::to_string(n) + "x" + std::to_string(n));
  const auto outcomes = run_series(cfg);

  support::Table t({"t (s)", "interval low", "mean point", "interval high",
                    "actual", "in range?"});
  for (const auto& o : outcomes) {
    t.add_row({support::fmt(o.start_time, 0),
               support::fmt(o.predicted.lower(), 1),
               support::fmt(o.point_predicted(), 1),
               support::fmt(o.predicted.upper(), 1),
               support::fmt(o.actual, 1),
               o.predicted.contains(o.actual) ? "yes" : "NO"});
  }
  std::cout << t.render();

  // The Figs. 12/14/16 view: time-stamped series of actuals vs intervals.
  support::Series actual{"actual execution times", {}, {}, 'A'};
  support::Series low{"stochastic interval low", {}, {}, '-'};
  support::Series high{"stochastic interval high", {}, {}, '+'};
  support::Series mean{"mean point values", {}, {}, 'm'};
  for (const auto& o : outcomes) {
    actual.xs.push_back(o.start_time);
    actual.ys.push_back(o.actual);
    low.xs.push_back(o.start_time);
    low.ys.push_back(o.predicted.lower());
    high.xs.push_back(o.start_time);
    high.ys.push_back(o.predicted.upper());
    mean.xs.push_back(o.start_time);
    mean.ys.push_back(o.point_predicted());
  }
  support::PlotOptions opts;
  opts.title = "execution times and stochastic predictions over time";
  opts.x_label = "trial start (virtual s)";
  opts.y_label = "time (sec)";
  const std::vector<support::Series> series{low, high, mean, actual};
  std::cout << "\n" << support::render_xy(series, opts);

  // The Figs. 13/15/17 companion: the load the slowest host saw at each
  // trial start.
  support::Series load{"load at trial start (slowest host)", {}, {}, 'L'};
  for (const auto& o : outcomes) {
    load.xs.push_back(o.start_time);
    load.ys.push_back(o.load_at_start.front());
  }
  support::PlotOptions lopts;
  lopts.title = "companion load trace (bursty)";
  lopts.x_label = "trial start (virtual s)";
  lopts.y_label = "availability";
  lopts.height = 10;
  const std::vector<support::Series> lseries{load};
  std::cout << support::render_xy(lseries, lopts);

  // Raw data for external replotting.
  std::filesystem::create_directories("bench_data");
  support::CsvWriter csv(
      "bench_data/fig12_17_n" + std::to_string(n) + ".csv",
      {"start_time", "interval_low", "mean_point", "interval_high", "actual",
       "load_at_start"});
  for (const auto& o : outcomes) {
    csv.write_row({o.start_time, o.predicted.lower(), o.point_predicted(),
                   o.predicted.upper(), o.actual, o.load_at_start.front()});
  }
  std::printf("  (raw series: bench_data/fig12_17_n%zu.csv)\n", n);

  const auto s = predict::score(outcomes);
  bench::compare_line("capture fraction", "~80%",
                      support::fmt_pct(s.capture_fraction, 0));
  bench::compare_line("max out-of-range error (stochastic)", "~14%",
                      support::fmt_pct(s.max_range_error, 1));
  bench::compare_line("max error of mean point values", "~38.6%",
                      support::fmt_pct(s.max_mean_error, 1));
  std::printf("  headline: stochastic max error is %.1fx smaller than the "
              "point max error\n",
              s.max_mean_error / std::max(s.max_range_error, 1e-9));
}

}  // namespace

int main() {
  bench::banner("Figures 12-17",
                "Platform 2 (bursty): stochastic vs point predictions, "
                "three problem sizes");
  run_size(1000, "Figures 14-15");
  run_size(1600, "Figures 12-13");
  run_size(2000, "Figures 16-17");
  return 0;
}
