// Ablation A6: hiding communication behind computation.
//
// The blocking SOR pays Max{Comp} + Max{Comm} per phase (the paper's
// structural model); the overlapped variant sweeps boundary rows first,
// ships them, and sweeps the interior while ghosts travel. This bench
// quantifies the hidden communication across grid sizes and shows the
// numerics are untouched.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "sor/distributed.hpp"
#include "sor/serial.hpp"
#include "support/table.hpp"

namespace {
using namespace sspred;

double total_comm(const sor::SorResult& r) {
  double acc = 0.0;
  for (const auto& rank : r.ranks) {
    for (const auto& t : rank.iterations) acc += t.red_comm + t.black_comm;
  }
  return acc;
}
}  // namespace

int main() {
  bench::banner("Ablation A6",
                "communication/computation overlap in the distributed SOR");

  support::Table t({"grid", "blocking (s)", "overlapped (s)", "speedup",
                    "comm hidden"});

  for (const std::size_t n : {200, 400, 800, 1600}) {
    sor::SorConfig cfg;
    cfg.n = n;
    cfg.iterations = 12;
    cfg.real_numerics = false;

    sim::Engine e1;
    cluster::Platform p1(e1, cluster::dedicated_platform(4), 41);
    const auto blocking = sor::run_distributed_sor(e1, p1, cfg);

    cfg.overlap_comm = true;
    sim::Engine e2;
    cluster::Platform p2(e2, cluster::dedicated_platform(4), 41);
    const auto overlapped = sor::run_distributed_sor(e2, p2, cfg);

    const double hidden =
        1.0 - total_comm(overlapped) / total_comm(blocking);
    t.add_row({std::to_string(n) + "x" + std::to_string(n),
               support::fmt(blocking.total_time, 2),
               support::fmt(overlapped.total_time, 2),
               support::fmt(blocking.total_time / overlapped.total_time, 2) +
                   "x",
               support::fmt_pct(hidden, 0)});
  }
  std::cout << "\n4x sparc10, dedicated network, 12 iterations\n\n"
            << t.render();

  // Correctness spot check: overlapped solution == serial solution.
  sor::SorConfig check;
  check.n = 32;
  check.iterations = 8;
  check.overlap_comm = true;
  check.gather_solution = true;
  sim::Engine engine;
  cluster::Platform platform(engine, cluster::dedicated_platform(4), 43);
  const auto result = sor::run_distributed_sor(engine, platform, check);
  sor::SerialSor serial(check.n);
  serial.iterate(check.iterations);
  double worst = 0.0;
  for (std::size_t i = 0; i < check.n; ++i) {
    for (std::size_t j = 0; j < check.n; ++j) {
      worst = std::max(worst, std::abs(result.solution[i * check.n + j] -
                                       serial.at(i, j)));
    }
  }
  bench::section("correctness");
  bench::compare_line("overlapped vs serial max deviation", "0 (bitwise)",
                      support::fmt(worst, 17));

  bench::section("reading");
  std::cout
      << "  * Small grids are comm-bound: overlapping hides most of the "
         "exchange and\n    buys a visible speedup.\n"
      << "  * Large grids are compute-bound: little left to hide — which "
         "is also why\n    the paper's additive Max{Comm} term stays "
         "accurate at its problem sizes.\n";
  return 0;
}
