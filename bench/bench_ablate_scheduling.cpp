// Ablation A4: the §1.2 scheduling strategies under explicit penalty
// metrics.
//
// The paper's motivating example: with equal production means (12 s/unit)
// but unequal variances (A ±5%, B ±30%), the right split depends on the
// penalty for misprediction. This bench allocates 400 units under each
// strategy and Monte-Carlo evaluates makespan mean, spread, tail and the
// probability of blowing a deadline.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "sched/workshare.hpp"
#include "stoch/montecarlo.hpp"
#include "support/table.hpp"

namespace {
using namespace sspred;

double deadline_miss_probability(const sched::Allocation& alloc,
                                 std::span<const sched::MachineProfile> ms,
                                 double deadline, support::Rng& rng) {
  constexpr int kTrials = 40'000;
  int misses = 0;
  for (int t = 0; t < kTrials; ++t) {
    double span = 0.0;
    for (std::size_t i = 0; i < ms.size(); ++i) {
      const double unit = std::max(1e-9, stoch::sample(ms[i].unit_time, rng));
      span = std::max(span, unit * static_cast<double>(alloc.units[i]));
    }
    if (span > deadline) ++misses;
  }
  return static_cast<double>(misses) / kTrials;
}

}  // namespace

int main() {
  bench::banner("Ablation A4",
                "work-allocation strategies over stochastic unit times "
                "(paper §1.2)");

  const std::vector<sched::MachineProfile> machines{
      {"A (quiet)", stoch::StochasticValue::from_percent(12.0, 5.0)},
      {"B (busy)", stoch::StochasticValue::from_percent(12.0, 30.0)},
  };
  constexpr std::size_t kUnits = 400;
  // Deadline 10% above the balanced-expectation makespan.
  constexpr double kDeadline = 0.5 * kUnits * 12.0 * 1.10;

  support::Table t({"strategy", "units A", "units B", "predicted makespan",
                    "MC mean", "MC sd", "MC p95", "P(miss deadline)"});
  support::Rng rng(20260707);

  struct Row {
    const char* name;
    sched::Strategy strategy;
    double risk;
  };
  const std::vector<Row> rows{
      {"mean-balance", sched::Strategy::kMeanBalance, 0.0},
      {"conservative (risk 0.5)", sched::Strategy::kConservative, 0.5},
      {"conservative (risk 1.0)", sched::Strategy::kConservative, 1.0},
      {"conservative (risk 2.0)", sched::Strategy::kConservative, 2.0},
      {"optimistic", sched::Strategy::kOptimistic, 0.0},
  };
  for (const auto& row : rows) {
    const auto alloc =
        sched::allocate(kUnits, machines, row.strategy, row.risk);
    const auto pred = sched::predicted_makespan(alloc, machines);
    const auto mc = sched::simulate_makespan(alloc, machines, rng, 40'000);
    const double miss =
        deadline_miss_probability(alloc, machines, kDeadline, rng);
    t.add_row({row.name, std::to_string(alloc.units[0]),
               std::to_string(alloc.units[1]), pred.to_string(0),
               support::fmt(mc.mean, 0), support::fmt(mc.sd, 1),
               support::fmt(mc.p95, 0), support::fmt_pct(miss, 1)});
  }
  std::cout << "\nworkload: " << kUnits << " units; unit times A = "
            << machines[0].unit_time << " s, B = " << machines[1].unit_time
            << " s; deadline " << support::fmt(kDeadline, 0) << " s\n\n"
            << t.render();

  bench::section("reading");
  std::cout
      << "  * Accuracy a priority (penalty for misprediction): shift work "
         "to the\n    low-variance machine A — the conservative rows cut sd, "
         "p95 and deadline\n    misses at a small mean cost.\n"
      << "  * Little penalty for bad guesses: the optimistic row bets on "
         "B's fast\n    tail; its expected makespan is no better and its "
         "tail risk is the worst.\n"
      << "  * This is only expressible because unit times are stochastic "
         "values —\n    point values make every strategy identical.\n";
  return 0;
}
