// End-to-end integration tests reproducing the paper's headline result in
// miniature: on a bursty production platform, stochastic predictions
// bracket the range of actual behaviour far better than point values.
#include <gtest/gtest.h>

#include "nws/sensor.hpp"
#include "nws/service.hpp"
#include "predict/experiment.hpp"
#include "stats/gmm.hpp"
#include "stoch/modes.hpp"
#include "support/rng.hpp"

namespace sspred {
namespace {

predict::SeriesConfig platform2_series(std::size_t trials) {
  predict::SeriesConfig cfg;
  cfg.platform = cluster::platform2();
  cfg.sor.n = 800;
  cfg.sor.iterations = 12;
  cfg.sor.real_numerics = false;  // virtual times are identical
  cfg.trials = trials;
  cfg.spacing = 120.0;
  cfg.load_source = predict::LoadParameterSource::kNwsForecast;
  cfg.bwavail = stoch::StochasticValue::from_mean_sd(0.525, 0.06);
  return cfg;
}

TEST(Integration, BurstyPlatformStochasticBeatsPointPredictions) {
  const auto outcomes = predict::run_series(platform2_series(10));
  ASSERT_EQ(outcomes.size(), 10u);
  const auto s = predict::score(outcomes);

  // Paper §3.2 shape: a healthy majority of actual times inside the
  // stochastic range...
  EXPECT_GE(s.capture_fraction, 0.5);
  // ...with the out-of-range error (stochastic) well below the
  // point-value error (38.6% vs 14% in the paper).
  EXPECT_LT(s.max_range_error, s.max_mean_error);
  EXPECT_LT(s.mean_range_error, s.mean_mean_error);
}

TEST(Integration, PredictionsRespondToLoad) {
  // Trials that started under heavier load must run longer; the model's
  // predictions should co-vary with the actuals.
  const auto outcomes = predict::run_series(platform2_series(12));
  double cov = 0.0;
  double mean_a = 0.0;
  double mean_p = 0.0;
  for (const auto& o : outcomes) {
    mean_a += o.actual;
    mean_p += o.predicted.mean();
  }
  mean_a /= static_cast<double>(outcomes.size());
  mean_p /= static_cast<double>(outcomes.size());
  for (const auto& o : outcomes) {
    cov += (o.actual - mean_a) * (o.predicted.mean() - mean_p);
  }
  EXPECT_GT(cov, 0.0);
}

TEST(Integration, NwsForecastFeedsModelEndToEnd) {
  sim::Engine engine;
  cluster::Platform platform(engine, cluster::platform2(), 77);
  nws::Service service;
  // Run sensors (in-simulation) for 10 virtual minutes.
  nws::attach_cpu_sensors(engine, platform, service, 5.0, 600.0);
  engine.run();
  for (std::size_t p = 0; p < platform.size(); ++p) {
    const auto f = service.forecast(nws::cpu_resource(platform.machine(p)));
    EXPECT_GT(f.value, 0.0);
    EXPECT_LE(f.value, 1.2);
    EXPECT_GT(f.error_sd, 0.0);  // bursty load -> nonzero uncertainty
  }
}

TEST(Integration, ModalAnalysisRecoversPlatform2Structure) {
  // Fit a mixture to a Platform-2 load trace, convert to modes, and check
  // the time-weighted mixture lands near the process's long-run mean.
  sim::Engine engine;
  cluster::PlatformSpec spec = cluster::platform2();
  spec.trace_duration = 20'000.0;
  cluster::Platform platform(engine, spec, 31);
  const auto samples = platform.machine(0).trace().samples();
  const std::vector<double> xs(samples.begin(), samples.end());

  const auto fit = stats::fit_gmm_auto(xs, 5);
  EXPECT_GE(fit.components.size(), 3u);  // bursty multi-modal structure

  const auto modes = stoch::modes_from_gmm(fit);
  const auto mixed = stoch::mixture_moments(modes);
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  EXPECT_NEAR(mixed.mean(), mean, 0.02);
}

TEST(Integration, SingleModeRegimeTighterThanBursty) {
  // Platform 1 (within-mode) predictions should be much tighter than
  // Platform 2 (bursty) ones, mirroring Figs. 9 vs 12.
  predict::SeriesConfig p1 = platform2_series(5);
  p1.platform = cluster::platform1();
  p1.load_source = predict::LoadParameterSource::kRecentSample;
  const auto o1 = predict::run_series(p1);

  const auto o2 = predict::run_series(platform2_series(5));

  auto mean_relative_width = [](const std::vector<predict::TrialOutcome>& os) {
    double acc = 0.0;
    for (const auto& o : os) acc += o.predicted.halfwidth() / o.predicted.mean();
    return acc / static_cast<double>(os.size());
  };
  EXPECT_LT(mean_relative_width(o1), mean_relative_width(o2));
}

}  // namespace
}  // namespace sspred
