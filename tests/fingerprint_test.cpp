// Tests for the canonical structural fingerprint builder
// (src/model/fingerprint.hpp) and its use as the program cache's
// structure key: injectivity of the encoding, hash determinism, and the
// ModelSpec::structure_key contract (structural inputs in, runtime
// bindings out).
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "cluster/platform.hpp"
#include "model/fingerprint.hpp"
#include "serve/program_cache.hpp"

namespace sspred::model {
namespace {

TEST(Fingerprint, HashIsDeterministicAndSpreads) {
  EXPECT_EQ(hash_bytes("abc"), hash_bytes("abc"));
  EXPECT_NE(hash_bytes("abc"), hash_bytes("abd"));
  EXPECT_NE(hash_bytes(""), hash_bytes(std::string_view("\0", 1)));
  // The splitmix64 finalizer must spread nearby inputs across the whole
  // 64-bit ring (raw FNV-1a mixes high bits poorly): check the top byte
  // takes many values over a small family of similar keys.
  std::set<std::uint64_t> top_bytes;
  for (int i = 0; i < 64; ++i) {
    top_bytes.insert(hash_bytes("shard-" + std::to_string(i)) >> 56);
  }
  EXPECT_GT(top_bytes.size(), 24u);
}

TEST(Fingerprint, FieldOrderAndNamesAreSignificant) {
  Fingerprint ab;
  ab.field("a", std::uint64_t{1}).field("b", std::uint64_t{2});
  Fingerprint ba;
  ba.field("b", std::uint64_t{2}).field("a", std::uint64_t{1});
  EXPECT_NE(ab.str(), ba.str());

  Fingerprint renamed;
  renamed.field("a", std::uint64_t{1}).field("c", std::uint64_t{2});
  EXPECT_NE(ab.str(), renamed.str());
}

TEST(Fingerprint, TypesCannotCollide) {
  // The same textual value under different types yields distinct keys:
  // u64 1, i64 1, double 1.0, bool true, string "1".
  const auto key = [](auto v) {
    Fingerprint fp;
    fp.field("x", v);
    return fp.str();
  };
  std::set<std::string> keys{key(std::uint64_t{1}), key(std::int64_t{1}),
                             key(1.0), key(true),
                             key(std::string_view("1"))};
  EXPECT_EQ(keys.size(), 5u);
}

TEST(Fingerprint, StringsAreLengthPrefixed) {
  // A value containing the separator/equals characters cannot fake a
  // different field sequence.
  Fingerprint smuggled;
  smuggled.field("a", std::string_view("x|b=s1:y"));
  Fingerprint two;
  two.field("a", std::string_view("x")).field("b", std::string_view("y"));
  EXPECT_NE(smuggled.str(), two.str());

  // Shifting bytes between adjacent string fields changes the key.
  Fingerprint left;
  left.field("a", std::string_view("xy")).field("b", std::string_view("z"));
  Fingerprint right;
  right.field("a", std::string_view("x")).field("b", std::string_view("yz"));
  EXPECT_NE(left.str(), right.str());
}

TEST(Fingerprint, DoublesRoundTripSeventeenDigits) {
  Fingerprint a;
  a.field("v", 0.1);
  Fingerprint b;
  b.field("v", 0.1 + 1e-18);  // below half an ULP: same double
  EXPECT_EQ(a.str(), b.str());
  Fingerprint c;
  c.field("v", std::nextafter(0.1, 1.0));  // genuinely distinct double
  EXPECT_NE(a.str(), c.str());
}

TEST(Fingerprint, TagsAndIntegralConvenienceOverloads) {
  Fingerprint fp;
  fp.tag("sor").field("n", std::size_t{200}).field("neg", -3);
  EXPECT_EQ(fp.str(), "#sor|n=u200|neg=i-3");
  EXPECT_EQ(fp.hash(), hash_bytes(fp.str()));

  enum class Kind : int { kOne = 1, kTwo = 2 };
  Fingerprint e1;
  e1.field("k", Kind::kOne);
  Fingerprint e2;
  e2.field("k", Kind::kTwo);
  EXPECT_NE(e1.str(), e2.str());
}

serve::ModelSpec spec_with(std::size_t n) {
  serve::ModelSpec spec;
  spec.app = serve::ModelSpec::App::kSor;
  spec.platform = cluster::dedicated_platform(2);
  spec.config.n = n;
  spec.config.iterations = 5;
  return spec;
}

TEST(StructureKey, EqualSpecsShareOneKeyDistinctSpecsDoNot) {
  EXPECT_EQ(spec_with(200).structure_key(), spec_with(200).structure_key());
  EXPECT_NE(spec_with(200).structure_key(), spec_with(201).structure_key());

  auto block = spec_with(200);
  block.app = serve::ModelSpec::App::kBlockSor;
  block.pr = 2;
  block.pc = 1;
  EXPECT_NE(block.structure_key(), spec_with(200).structure_key());

  auto options_changed = spec_with(200);
  options_changed.options.account_memory =
      !options_changed.options.account_memory;
  EXPECT_NE(options_changed.structure_key(), spec_with(200).structure_key());

  auto machine_changed = spec_with(200);
  machine_changed.platform.hosts[0].machine.ops_per_second *= 2.0;
  EXPECT_NE(machine_changed.structure_key(), spec_with(200).structure_key());
}

TEST(StructureKey, RuntimeLoadBindingsAreExcluded) {
  // Loads are bindings, not structure: two specs that differ only in the
  // hosts' load processes compile to one shared program.
  auto loaded = spec_with(200);
  for (auto& host : loaded.platform.hosts) {
    host.load = cluster::platform1_load();
    host.load_interval = 0.25;
  }
  EXPECT_EQ(loaded.structure_key(), spec_with(200).structure_key());
}

}  // namespace
}  // namespace sspred::model
