// Unit tests for platform assembly and the shipped paper testbeds.
#include <gtest/gtest.h>

#include "cluster/platform.hpp"
#include "stats/descriptive.hpp"
#include "stats/gmm.hpp"
#include "support/error.hpp"

namespace sspred::cluster {
namespace {

TEST(PlatformSpecs, DedicatedHostsAreUniform) {
  const PlatformSpec spec = dedicated_platform(4);
  ASSERT_EQ(spec.hosts.size(), 4u);
  for (const auto& h : spec.hosts) {
    EXPECT_DOUBLE_EQ(h.machine.bm_seconds_per_element,
                     machine::sparc10_spec().bm_seconds_per_element);
  }
}

TEST(PlatformSpecs, Platform1HasPaperMachines) {
  const PlatformSpec spec = platform1();
  ASSERT_EQ(spec.hosts.size(), 4u);  // 2x Sparc-2, Sparc-5, Sparc-10
  EXPECT_EQ(spec.hosts[0].machine.name, "sparc2-a");
  EXPECT_EQ(spec.hosts[3].machine.name, "sparc10");
}

TEST(PlatformSpecs, Platform2HasUltras) {
  const PlatformSpec spec = platform2();
  ASSERT_EQ(spec.hosts.size(), 4u);
  EXPECT_EQ(spec.hosts[2].machine.name, "ultra-a");
  EXPECT_EQ(spec.hosts[3].machine.name, "ultra-b");
}

TEST(Platform, BuildsMachinesWithTraces) {
  sim::Engine eng;
  Platform p(eng, dedicated_platform(3), 42);
  EXPECT_EQ(p.size(), 3u);
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_GE(p.machine(i).trace().duration(), 4000.0);
  }
}

TEST(Platform, DeterministicForSeed) {
  sim::Engine e1;
  sim::Engine e2;
  Platform a(e1, platform2(), 7);
  Platform b(e2, platform2(), 7);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto sa = a.machine(i).trace().samples();
    const auto sb = b.machine(i).trace().samples();
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t j = 0; j < sa.size(); ++j) {
      EXPECT_DOUBLE_EQ(sa[j], sb[j]);
    }
  }
}

TEST(Platform, DifferentSeedsGiveDifferentTraces) {
  sim::Engine e1;
  sim::Engine e2;
  Platform a(e1, platform2(), 1);
  Platform b(e2, platform2(), 2);
  const auto sa = a.machine(0).trace().samples();
  const auto sb = b.machine(0).trace().samples();
  int same = 0;
  for (std::size_t j = 0; j < sa.size(); ++j) {
    if (sa[j] == sb[j]) ++same;
  }
  EXPECT_LT(same, static_cast<int>(sa.size() / 10));
}

TEST(Platform, HostsGetIndependentTraces) {
  sim::Engine eng;
  Platform p(eng, platform2(), 11);
  const auto s0 = p.machine(0).trace().samples();
  const auto s1 = p.machine(1).trace().samples();
  int same = 0;
  for (std::size_t j = 0; j < std::min(s0.size(), s1.size()); ++j) {
    if (s0[j] == s1[j]) ++same;
  }
  EXPECT_LT(same, static_cast<int>(s0.size() / 10));
}

TEST(Platform, SlowestHostIsSparc2OnPlatform1) {
  sim::Engine eng;
  Platform p(eng, platform1(), 3);
  EXPECT_EQ(p.slowest_host(), 0u);  // sparc2-a
}

TEST(Platform, HostIndexOutOfRangeThrows) {
  sim::Engine eng;
  Platform p(eng, dedicated_platform(2), 1);
  EXPECT_THROW((void)p.machine(2), support::Error);
}

TEST(Platform1Load, CenterModeMatchesPaperParameters) {
  // §3.1: centre mode mean 0.48, stochastic value 0.48 ± 0.05.
  const auto spec = platform1_load(/*center_only=*/true);
  ASSERT_EQ(spec.modes.size(), 1u);
  machine::LoadTrace trace =
      machine::LoadTrace::generate(spec, 5'000, 1.0, 99);
  const auto s = stats::summarize(
      std::vector<double>(trace.samples().begin(), trace.samples().end()));
  EXPECT_NEAR(s.mean, 0.48, 0.01);
  EXPECT_NEAR(2.0 * s.sd, 0.05, 0.02);  // two sigma ≈ the paper's ±0.05
}

TEST(Platform1Load, FullSpecIsTrimodal) {
  const auto spec = platform1_load();
  EXPECT_EQ(spec.modes.size(), 3u);
  machine::LoadTrace trace =
      machine::LoadTrace::generate(spec, 30'000, 1.0, 101);
  const std::vector<double> xs(trace.samples().begin(),
                               trace.samples().end());
  const auto fit = stats::fit_gmm(xs, 3);
  EXPECT_NEAR(fit.components[0].mean, 0.33, 0.05);
  EXPECT_NEAR(fit.components[1].mean, 0.48, 0.05);
  EXPECT_NEAR(fit.components[2].mean, 0.94, 0.05);
}

TEST(Platform2Load, IsBurstyAcrossFourModes) {
  const auto spec = platform2_load();
  EXPECT_EQ(spec.modes.size(), 4u);
  // Dwells of minutes: bursty on the experiment horizon, but persistent
  // enough that a single SOR run sees only one or two modes.
  for (const auto& m : spec.modes) EXPECT_LE(m.mean_dwell, 120.0);
  machine::LoadTrace trace =
      machine::LoadTrace::generate(spec, 5'000, 1.0, 103);
  const std::vector<double> xs(trace.samples().begin(),
                               trace.samples().end());
  const auto s = stats::summarize(xs);
  EXPECT_GT(s.sd, 0.2);  // wide swings, unlike the single-mode case
}

TEST(EthernetAvailability, ProductionMeanNearHalf) {
  const auto spec = production_ethernet_availability();
  stats::ModalProcess p(spec, 17);
  double sum = 0.0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) sum += p.next(1.0);
  // Fig. 3: ~5.25 of 10 Mbit available on average.
  EXPECT_NEAR(sum / n, 0.525, 0.03);
}

}  // namespace
}  // namespace sspred::cluster
