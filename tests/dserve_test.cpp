// Tests for the multi-node serving tier (src/dserve/): fault-plan
// parsing and link fault injection, the ServingNode wire surface
// (crash/restart lifecycle, garbage tolerance), Membership health
// fusion, and the ClusterFrontend end to end — healthy-cluster
// bit-exactness vs a single-node service, failover determinism across a
// mid-stream crash (no accepted request lost, identical ids + values),
// epoch convergence after a restart ("partition heal"), node-prefixed
// metrics nesting, observation forwarding, and a concurrent
// clients-vs-faults stress (TSan target).
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "calib/ledger.hpp"
#include "cluster/platform.hpp"
#include "dserve/fault.hpp"
#include "dserve/frontend.hpp"
#include "dserve/membership.hpp"
#include "dserve/node.hpp"
#include "serve/wire.hpp"
#include "support/error.hpp"

namespace sspred::dserve {
namespace {

serve::ModelSpec family_spec(std::size_t n, std::size_t hosts = 2) {
  serve::ModelSpec spec;
  spec.app = serve::ModelSpec::App::kSor;
  spec.platform = cluster::dedicated_platform(hosts);
  spec.config.n = n;
  spec.config.iterations = 5;
  return spec;
}

serve::PredictRequest request_for(const std::string& id, double base) {
  serve::PredictRequest request;
  request.model_id = id;
  request.loads = {stoch::StochasticValue(base, 0.1),
                   stoch::StochasticValue(base + 0.05, 0.1)};
  return request;
}

ClusterOptions small_cluster(std::size_t nodes = 3) {
  ClusterOptions options;
  options.nodes = nodes;
  options.replicas = 2;
  options.node_options.shards = 1;
  options.node_options.workers = 2;
  return options;
}

void register_families(ClusterFrontend& cluster, std::size_t families) {
  for (std::size_t f = 0; f < families; ++f) {
    cluster.register_model("family" + std::to_string(f),
                           family_spec(100 + 37 * f));
  }
}

// --- FaultPlan ---------------------------------------------------------

TEST(DserveFaultPlan, ParsesSpecGrammar) {
  FaultPlan plan = FaultPlan::parse(
      "crash@100:1,restart@300:1,slow@50:2:0.002,drop@10:0:5,"
      "delay@20:1:0.001");
  ASSERT_EQ(plan.remaining(), 5u);
  const auto& events = plan.events();
  // Sorted by step.
  EXPECT_EQ(events[0].kind, FaultEvent::Kind::kDrop);
  EXPECT_EQ(events[0].step, 10u);
  EXPECT_EQ(events[0].node, 0u);
  EXPECT_DOUBLE_EQ(events[0].param, 5.0);
  EXPECT_EQ(events[1].kind, FaultEvent::Kind::kDelay);
  EXPECT_EQ(events[2].kind, FaultEvent::Kind::kSlow);
  EXPECT_DOUBLE_EQ(events[2].param, 0.002);
  EXPECT_EQ(events[3].kind, FaultEvent::Kind::kCrash);
  EXPECT_EQ(events[3].node, 1u);
  EXPECT_EQ(events[4].kind, FaultEvent::Kind::kRestart);
  EXPECT_EQ(events[4].step, 300u);

  EXPECT_TRUE(FaultPlan::parse("").empty());
}

TEST(DserveFaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW((void)FaultPlan::parse("explode@1:0"), support::Error);
  EXPECT_THROW((void)FaultPlan::parse("crash@1"), support::Error);
  EXPECT_THROW((void)FaultPlan::parse("crash:1@2"), support::Error);
  EXPECT_THROW((void)FaultPlan::parse("crash@x:0"), support::Error);
  EXPECT_THROW((void)FaultPlan::parse("crash@1:0junk"), support::Error);
  EXPECT_THROW((void)FaultPlan::parse("crash@1:0:5:9"), support::Error);
  EXPECT_THROW((void)FaultPlan::parse("slow@1:0"), support::Error);
  EXPECT_THROW((void)FaultPlan::parse("delay@1:0:-0.5"), support::Error);
}

TEST(DserveFaultPlan, TakeDueConsumesInScheduleOrder) {
  FaultPlan plan = FaultPlan::parse("crash@5:0,restart@9:0,crash@5:1");
  EXPECT_TRUE(plan.take_due(4).empty());
  const auto due = plan.take_due(5);
  ASSERT_EQ(due.size(), 2u);  // both step-5 events, insertion order
  EXPECT_EQ(due[0].node, 0u);
  EXPECT_EQ(due[1].node, 1u);
  EXPECT_EQ(plan.remaining(), 1u);
  EXPECT_EQ(plan.take_due(100).size(), 1u);
  EXPECT_TRUE(plan.empty());
}

// --- FaultyLink --------------------------------------------------------

class EchoTransport final : public Transport {
 public:
  std::optional<std::vector<std::uint8_t>> call(
      const std::vector<std::uint8_t>& frame) override {
    ++calls;
    return frame;
  }
  int calls = 0;
};

TEST(DserveFaultyLink, DropsArmedFramesThenForwards) {
  EchoTransport echo;
  FaultyLink link(echo);
  const std::vector<std::uint8_t> frame = {1, 2, 3};

  link.drop_next(2);
  EXPECT_FALSE(link.call(frame).has_value());
  EXPECT_FALSE(link.call(frame).has_value());
  const auto reply = link.call(frame);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(*reply, frame);
  EXPECT_EQ(link.dropped(), 2u);
  EXPECT_EQ(echo.calls, 1);

  link.set_delay(1e-6);
  EXPECT_TRUE(link.call(frame).has_value());
  EXPECT_EQ(link.delayed(), 1u);
  link.set_delay(0.0);
  EXPECT_TRUE(link.call(frame).has_value());
  EXPECT_EQ(link.delayed(), 1u);
}

// --- ServingNode -------------------------------------------------------

TEST(DserveNode, ServesWireFramesAndSurvivesGarbage) {
  serve::ServiceOptions options;
  options.workers = 1;
  ServingNode node(0, options);
  node.register_model("sor", family_spec(120));

  // A prediction round trip, pure bytes in / bytes out.
  const auto frame = serve::encode_request(request_for("sor", 0.8), 77);
  const auto reply = node.handle_frame(frame);
  ASSERT_TRUE(reply.has_value());
  const auto decoded =
      serve::decode_response(reply->data() + 4, reply->size() - 4);
  EXPECT_EQ(decoded.client_tag, 77u);
  ASSERT_TRUE(decoded.result.ok()) << decoded.result.error;
  EXPECT_GT(decoded.result.point, 0.0);

  // Heartbeat: epoch version 0 before any publish.
  const auto hb = node.handle_frame(serve::encode_heartbeat(5));
  ASSERT_TRUE(hb.has_value());
  const auto ack = serve::decode_heartbeat_ack(hb->data() + 4, hb->size() - 4);
  EXPECT_EQ(ack.client_tag, 5u);
  EXPECT_EQ(ack.epoch_version, 0u);

  // Epoch publish installs and acks.
  serve::EpochFrame epoch;
  epoch.client_tag = 9;
  epoch.version = 3;
  epoch.bindings.emplace("cpu/a", stoch::StochasticValue(0.5, 0.1));
  const auto ea = node.handle_frame(serve::encode_epoch_publish(epoch));
  ASSERT_TRUE(ea.has_value());
  EXPECT_EQ(serve::decode_epoch_ack(ea->data() + 4, ea->size() - 4).version,
            3u);
  EXPECT_EQ(node.epoch_version(), 3u);

  // Garbage frames: nullopt + bad_frames count, never a throw.
  EXPECT_FALSE(node.handle_frame({0x01, 0x02}).has_value());
  std::vector<std::uint8_t> junk(32, 0xab);
  EXPECT_FALSE(node.handle_frame(junk).has_value());
  // A reply type is a protocol violation on a node's inbound stream.
  EXPECT_FALSE(node.handle_frame(*reply).has_value());
  EXPECT_EQ(node.metrics().counter("node_bad_frames").value(), 3u);
}

TEST(DserveNode, CrashStopsServiceAndRestartLosesEpochNotModels) {
  serve::ServiceOptions options;
  options.workers = 1;
  ServingNode node(1, options);
  node.register_model("sor", family_spec(140));

  serve::EpochFrame epoch;
  epoch.version = 7;
  ASSERT_TRUE(
      node.handle_frame(serve::encode_epoch_publish(epoch)).has_value());
  EXPECT_EQ(node.epoch_version(), 7u);

  node.crash();
  EXPECT_TRUE(node.crashed());
  node.crash();  // idempotent
  const auto frame = serve::encode_request(request_for("sor", 0.8), 1);
  EXPECT_FALSE(node.handle_frame(frame).has_value());
  EXPECT_FALSE(node.handle_frame(serve::encode_heartbeat(1)).has_value());
  EXPECT_EQ(node.epoch_version(), 0u);  // crashed: reports nothing

  node.restart();
  EXPECT_FALSE(node.crashed());
  EXPECT_EQ(node.epoch_version(), 0u);  // epoch lost at restart...
  const auto reply = node.handle_frame(frame);  // ...models survived
  ASSERT_TRUE(reply.has_value());
  const auto decoded =
      serve::decode_response(reply->data() + 4, reply->size() - 4);
  EXPECT_TRUE(decoded.result.ok()) << decoded.result.error;
  EXPECT_EQ(node.metrics().counter("node_crashes").value(), 1u);
  EXPECT_EQ(node.metrics().counter("node_restarts").value(), 1u);
}

// --- Membership --------------------------------------------------------

TEST(DserveMembership, FusesOutcomesAndHeartbeatsIntoStates) {
  serve::MetricsRegistry registry;
  Membership membership(2, registry, /*ewma_alpha=*/0.5, /*ewma_floor=*/0.5,
                        /*down_after=*/2);
  EXPECT_EQ(membership.state(0), NodeState::kUp);
  EXPECT_EQ(membership.up_count(), 2u);

  // One failure: suspect (EWMA halves to 0.5 < floor? 0.5 is not < 0.5 —
  // second failure crosses both thresholds and downs it anyway).
  membership.record_failure(0);
  EXPECT_NE(membership.state(0), NodeState::kDown);
  membership.record_failure(0);
  EXPECT_EQ(membership.state(0), NodeState::kDown);
  EXPECT_EQ(membership.up_count(), 1u);
  EXPECT_EQ(registry.counter("node_transitions_down").value(), 1u);

  // A heartbeat resurrects with a clean slate.
  membership.heartbeat_ok(0, 4);
  EXPECT_EQ(membership.state(0), NodeState::kUp);
  EXPECT_EQ(membership.health(0).epoch_version, 4u);
  EXPECT_EQ(registry.counter("node_transitions_up").value(), 1u);

  // Missed heartbeats alone also down a node.
  membership.heartbeat_missed(1);
  EXPECT_NE(membership.state(1), NodeState::kDown);
  membership.heartbeat_missed(1);
  EXPECT_EQ(membership.state(1), NodeState::kDown);

  // A flaky-but-alive node hovers at kSuspect: failures drag the EWMA
  // under the floor, successes reset the streak before kDown.
  membership.heartbeat_ok(1, 0);  // revived; EWMA untouched (still 1.0)
  membership.record_failure(1);   // EWMA 0.5: at the floor, still kUp
  EXPECT_EQ(membership.state(1), NodeState::kUp);
  membership.record_success(1);   // streak reset before a second failure
  membership.record_failure(1);   // EWMA 0.375: under the floor
  EXPECT_EQ(membership.state(1), NodeState::kSuspect);
  for (int i = 0; i < 8; ++i) membership.record_success(1);
  EXPECT_EQ(membership.state(1), NodeState::kUp);

  EXPECT_THROW((void)membership.state(7), std::out_of_range);
}

// --- ClusterFrontend ---------------------------------------------------

TEST(ClusterFrontend, HealthyClusterMatchesSingleNodeBitExact) {
  constexpr std::size_t kFamilies = 4;
  constexpr int kRequests = 40;

  // Single-node baseline: one service, same per-node configuration.
  serve::PredictionService single(small_cluster().node_options);
  ClusterFrontend cluster(small_cluster());
  for (std::size_t f = 0; f < kFamilies; ++f) {
    single.register_model("family" + std::to_string(f),
                          family_spec(100 + 37 * f));
  }
  register_families(cluster, kFamilies);

  for (int i = 0; i < kRequests; ++i) {
    const auto request = request_for(
        "family" + std::to_string(i % kFamilies), 0.6 + 0.01 * (i % 7));
    const auto expected = single.submit(request).get();
    ASSERT_TRUE(expected.ok()) << expected.error;

    const ClusterResult served = cluster.predict(request);
    ASSERT_TRUE(served.result.ok()) << served.result.error;
    EXPECT_EQ(served.attempts, 1u);
    // Bit-exact: same value wherever it ran.
    EXPECT_EQ(served.result.value, expected.value);
    EXPECT_EQ(served.result.point, expected.point);
    // Cluster ids are the frontend's step sequence.
    EXPECT_EQ(served.result.request_id, static_cast<std::uint64_t>(i + 1));
  }
  EXPECT_EQ(cluster.metrics().counter("requests_ok").value(),
            static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(cluster.metrics().counter("failovers_total").value(), 0u);
}

TEST(ClusterFrontend, UnknownModelAnsweredStructurallyNotDropped) {
  ClusterFrontend cluster(small_cluster());
  register_families(cluster, 1);
  const ClusterResult served = cluster.predict(request_for("nope", 0.7));
  EXPECT_EQ(served.result.status, serve::PredictResult::Status::kError);
  EXPECT_NE(served.result.error.find("nope"), std::string::npos);
}

// The tentpole determinism claim: a fixed-seed run with a mid-stream
// node crash returns the identical (request_id -> value) set as the
// healthy run — requests just arrive via different nodes.
TEST(ClusterFrontend, FailoverAcrossCrashPreservesResultSetBitExact) {
  constexpr std::size_t kFamilies = 5;
  constexpr int kRequests = 60;
  constexpr std::uint64_t kCrashStep = 20;

  // Crash family0's primary: family0 is requested both before and after
  // the crash step, so the victim provably serves, dies, and is routed
  // around. Placement is deterministic, so a probe cluster's ring
  // answers for both runs.
  const std::size_t victim = [] {
    ClusterFrontend probe(small_cluster());
    register_families(probe, kFamilies);
    return probe.replica_set("family0").front();
  }();

  const auto run = [&](FaultPlan plan,
                       std::vector<std::size_t>* nodes_used) {
    ClusterFrontend cluster(small_cluster(), std::move(plan));
    register_families(cluster, kFamilies);
    std::map<std::uint64_t, serve::PredictResult> results;
    for (int i = 0; i < kRequests; ++i) {
      const auto request = request_for(
          "family" + std::to_string(i % kFamilies), 0.55 + 0.01 * (i % 9));
      ClusterResult served = cluster.predict(request);
      EXPECT_TRUE(served.result.ok()) << served.result.error;
      if (nodes_used != nullptr) nodes_used->push_back(served.node);
      results.emplace(served.result.request_id, std::move(served.result));
    }
    EXPECT_EQ(results.size(), static_cast<std::size_t>(kRequests));
    return results;
  };

  std::vector<std::size_t> healthy_nodes;
  std::vector<std::size_t> crashed_nodes;
  const auto healthy = run(FaultPlan{}, &healthy_nodes);

  FaultPlan plan;
  plan.add({FaultEvent::Kind::kCrash, kCrashStep, victim, 0.0});
  const auto crashed = run(std::move(plan), &crashed_nodes);

  // Zero lost accepted requests, identical ids and bit-exact values.
  ASSERT_EQ(healthy.size(), crashed.size());
  for (const auto& [id, expected] : healthy) {
    const auto it = crashed.find(id);
    ASSERT_NE(it, crashed.end()) << "request " << id << " lost";
    EXPECT_EQ(it->second.value, expected.value) << "request " << id;
    EXPECT_EQ(it->second.point, expected.point) << "request " << id;
  }

  // The victim actually served before the crash and never after it.
  bool victim_served_before = false;
  for (std::size_t i = 0; i < crashed_nodes.size(); ++i) {
    if (crashed_nodes[i] != victim) continue;
    if (i + 1 < kCrashStep) {
      victim_served_before = true;
    } else {
      ADD_FAILURE() << "crashed node served step " << i + 1;
    }
  }
  EXPECT_TRUE(victim_served_before);
  EXPECT_NE(healthy_nodes, crashed_nodes);  // failover rerouted something
}

TEST(ClusterFrontend, EpochConvergesAfterCrashRestartHeal) {
  ClusterOptions options = small_cluster();
  ClusterFrontend cluster(options);
  cluster.register_model("sor", family_spec(130));

  std::map<std::string, stoch::StochasticValue> bindings;
  bindings.emplace("cpu/a", stoch::StochasticValue(0.7, 0.1));
  bindings.emplace("cpu/b", stoch::StochasticValue(0.8, 0.1));
  cluster.publish_epoch(
      std::make_shared<const serve::BindingsEpoch>(5, bindings));
  EXPECT_EQ(cluster.epoch_version(), 5u);
  for (std::size_t n = 0; n < cluster.nodes(); ++n) {
    EXPECT_EQ(cluster.node(n).epoch_version(), 5u);
  }
  EXPECT_EQ(cluster.heartbeat_tick(), 0u);  // everyone current

  // Partition: node 1 dies, misses an epoch bump, comes back empty.
  cluster.inject({FaultEvent::Kind::kCrash, 0, 1, 0.0});
  bindings["cpu/a"] = stoch::StochasticValue(0.75, 0.1);
  cluster.publish_epoch(
      std::make_shared<const serve::BindingsEpoch>(6, bindings));
  cluster.inject({FaultEvent::Kind::kRestart, 0, 1, 0.0});
  EXPECT_EQ(cluster.node(1).epoch_version(), 0u);  // fresh, no epoch

  // Heal: the next heartbeat tick detects the skew and rebalances.
  EXPECT_EQ(cluster.heartbeat_tick(), 1u);
  EXPECT_EQ(cluster.node(1).epoch_version(), 6u);
  EXPECT_GE(cluster.metrics().counter("rebalances_total").value(), 1u);
  EXPECT_EQ(cluster.heartbeat_tick(), 0u);  // converged

  // And the healed node actually serves off the synced epoch.
  serve::PredictRequest by_resource;
  by_resource.model_id = "sor";
  by_resource.resources = {"cpu/a", "cpu/b"};
  const auto reply =
      cluster.node(1).handle_frame(serve::encode_request(by_resource, 1));
  ASSERT_TRUE(reply.has_value());
  const auto decoded =
      serve::decode_response(reply->data() + 4, reply->size() - 4);
  ASSERT_TRUE(decoded.result.ok()) << decoded.result.error;
  EXPECT_EQ(decoded.result.epoch_version, 6u);
}

TEST(ClusterFrontend, DownNodesSinkInFailoverOrderAndRecover) {
  ClusterOptions options = small_cluster();
  options.down_after_failures = 1;  // one drop is enough
  ClusterFrontend cluster(options);
  register_families(cluster, 6);

  // Find a family whose primary is node `victim`.
  const std::size_t victim = cluster.replica_set("family0").front();
  cluster.inject({FaultEvent::Kind::kCrash, 0, victim, 0.0});

  // First request pays the failover; the primary is then kDown and the
  // next request goes straight to the successor.
  ClusterResult first = cluster.predict(request_for("family0", 0.7));
  ASSERT_TRUE(first.result.ok()) << first.result.error;
  EXPECT_EQ(first.attempts, 2u);
  EXPECT_EQ(cluster.membership().state(victim), NodeState::kDown);

  ClusterResult second = cluster.predict(request_for("family0", 0.7));
  ASSERT_TRUE(second.result.ok()) << second.result.error;
  EXPECT_EQ(second.attempts, 1u);
  EXPECT_NE(second.node, victim);
  EXPECT_GE(cluster.metrics().counter("failovers_total").value(), 1u);
  EXPECT_GE(cluster.metrics().counter("requests_retried").value(), 1u);

  // Restart + heartbeat: the node rejoins the preferred order.
  cluster.inject({FaultEvent::Kind::kRestart, 0, victim, 0.0});
  (void)cluster.heartbeat_tick();
  EXPECT_EQ(cluster.membership().state(victim), NodeState::kUp);
  ClusterResult third = cluster.predict(request_for("family0", 0.7));
  ASSERT_TRUE(third.result.ok()) << third.result.error;
  EXPECT_EQ(third.node, victim);
  EXPECT_EQ(third.result.value, first.result.value);  // still bit-exact
}

TEST(ClusterFrontend, WholeReplicaSetDownYieldsStructuredRejection) {
  ClusterOptions options = small_cluster(2);
  options.replicas = 2;
  ClusterFrontend cluster(options);
  register_families(cluster, 1);
  cluster.inject({FaultEvent::Kind::kCrash, 0, 0, 0.0});
  cluster.inject({FaultEvent::Kind::kCrash, 0, 1, 0.0});

  const ClusterResult served = cluster.predict(request_for("family0", 0.7));
  EXPECT_EQ(served.result.status, serve::PredictResult::Status::kRejected);
  EXPECT_NE(served.result.error.find("no replica"), std::string::npos);
  EXPECT_EQ(served.attempts, 2u);
  EXPECT_EQ(cluster.metrics().counter("requests_rejected").value(), 1u);
}

TEST(ClusterFrontend, MetricsNestNodeAndShardPrefixes) {
  ClusterOptions options = small_cluster();
  options.node_options.shards = 2;  // nodes expose shard children
  ClusterFrontend cluster(options);
  register_families(cluster, 3);
  for (int i = 0; i < 12; ++i) {
    (void)cluster.predict(request_for("family" + std::to_string(i % 3), 0.7));
  }

  std::set<std::string> names;
  for (const auto& sample : cluster.metrics().snapshot()) {
    names.insert(sample.name);
  }
  // Frontend's own counters, unprefixed.
  EXPECT_TRUE(names.contains("requests_total"));
  EXPECT_TRUE(names.contains("failovers_total"));
  // Node children: node-level instruments plus the service's registry
  // merged unprefixed under "node<k>/".
  EXPECT_TRUE(names.contains("node0/node_frames_served"));
  EXPECT_TRUE(names.contains("node0/requests_total"));
  // Nested prefixes compose: the service's own shard children surface as
  // node<k>/shard<j>/... rows.
  EXPECT_TRUE(names.contains("node0/shard1/requests_total"));
  EXPECT_TRUE(names.contains("node2/shard0/queue_depth"));

  const std::string json = cluster.render_metrics_json();
  EXPECT_NE(json.find("\"node0/shard1/requests_total\""), std::string::npos);
  EXPECT_NE(json.find("\"node1/node_frames_served\""), std::string::npos);
}

TEST(ClusterFrontend, ObservationsForwardToServingNode) {
  ClusterOptions options = small_cluster();
  options.node_options.ledger = std::make_shared<calib::AccuracyLedger>();
  ClusterFrontend cluster(options);
  cluster.register_model("sor", family_spec(125));

  const ClusterResult served = cluster.predict(request_for("sor", 0.8));
  ASSERT_TRUE(served.result.ok()) << served.result.error;
  EXPECT_TRUE(cluster.report_observation(served.result.request_id,
                                         served.result.point * 1.02));
  // Same id again: the mapping is consumed.
  EXPECT_FALSE(cluster.report_observation(served.result.request_id, 1.0));
  EXPECT_FALSE(cluster.report_observation(9999, 1.0));
  EXPECT_EQ(cluster.metrics().counter("observations_forwarded").value(), 1u);
  EXPECT_EQ(cluster.metrics().counter("observations_unmatched").value(), 2u);

  // The ledger on the serving node actually ingested it.
  const auto snapshot = options.node_options.ledger->snapshot();
  EXPECT_EQ(snapshot.count, 1u);
}

// Concurrent clients vs scheduled faults (TSan target): no result is
// lost or invented, every future resolves, and the cluster serves
// through a crash/restart cycle.
TEST(ClusterFrontend, ConcurrentClientsSurviveCrashRestartStress) {
  constexpr int kClients = 4;
  constexpr int kPerClient = 60;
  constexpr std::size_t kFamilies = 6;

  ClusterOptions options = small_cluster();
  options.node_options.workers = 2;
  FaultPlan plan = FaultPlan::parse("crash@60:0,restart@140:0,crash@160:2");
  ClusterFrontend cluster(options, std::move(plan));
  register_families(cluster, kFamilies);

  std::atomic<int> served{0};
  std::atomic<int> lost{0};
  std::atomic<bool> stop_heartbeats{false};
  std::thread heartbeats([&] {
    while (!stop_heartbeats.load()) {
      (void)cluster.heartbeat_tick();
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const auto id =
            "family" + std::to_string((c + i) % kFamilies);
        const ClusterResult r = cluster.predict(request_for(id, 0.7));
        if (r.result.ok()) {
          served.fetch_add(1);
        } else {
          lost.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  stop_heartbeats.store(true);
  heartbeats.join();

  EXPECT_EQ(served.load() + lost.load(), kClients * kPerClient);
  // R=2 replicas and at most one node down at a time: every request has
  // a live replica, so nothing is lost.
  EXPECT_EQ(lost.load(), 0);
  EXPECT_EQ(cluster.metrics().counter("requests_ok").value(),
            static_cast<std::uint64_t>(served.load()));
}

// --- Learning across the cluster tier ---------------------------------

// Satellite regression: when the frontend's bounded served-id map evicts
// under pressure, reports for evicted ids must come back unmatched — and
// must never reach the ledger or the learned-predictor bank, whose
// training counts have to equal the forwarded-observation count exactly.
TEST(ClusterFrontend, EvictedIdsStayOutOfLedgerAndBankTraining) {
  constexpr std::size_t kCapacity = 4;
  constexpr std::size_t kRequests = 12;

  ClusterOptions options = small_cluster(2);
  options.observation_capacity = kCapacity;
  options.node_options.ledger = std::make_shared<calib::AccuracyLedger>();
  options.node_options.enable_learning = true;
  ClusterFrontend cluster(options);
  cluster.register_model("sor", family_spec(125));

  std::vector<ClusterResult> served;
  for (std::size_t i = 0; i < kRequests; ++i) {
    served.push_back(cluster.predict(request_for("sor", 0.6)));
    ASSERT_TRUE(served.back().result.ok()) << served.back().result.error;
  }

  // The oldest kRequests - kCapacity ids were evicted from the map.
  for (std::size_t i = 0; i < kRequests - kCapacity; ++i) {
    EXPECT_FALSE(cluster.report_observation(served[i].result.request_id,
                                            served[i].result.point));
  }
  // The newest kCapacity ids still forward.
  for (std::size_t i = kRequests - kCapacity; i < kRequests; ++i) {
    EXPECT_TRUE(cluster.report_observation(served[i].result.request_id,
                                           served[i].result.point * 1.1));
  }
  EXPECT_EQ(cluster.metrics().counter("observations_unmatched").value(),
            kRequests - kCapacity);
  EXPECT_EQ(cluster.metrics().counter("observations_forwarded").value(),
            kCapacity);

  // Ledger saw exactly the forwarded observations, nothing more.
  EXPECT_EQ(options.node_options.ledger->snapshot().count, kCapacity);

  // Bank training (node-local, so summed across nodes) matches too:
  // evicted ids trained nothing.
  std::uint64_t trained = 0;
  for (std::size_t n = 0; n < cluster.nodes(); ++n) {
    auto* service = cluster.node(n).service();
    ASSERT_NE(service, nullptr);
    for (const auto& row : service->bank()->snapshot()) {
      trained += row.observations;
    }
  }
  EXPECT_EQ(trained, kCapacity);
}

// Bank and arbiter state is node-local by design: a restarted node comes
// back with a blank bank and re-converges from fresh observations only.
TEST(ClusterFrontend, RestartedNodeRebuildsBankFromFreshObservations) {
  ClusterOptions options = small_cluster(1);
  options.node_options.enable_learning = true;
  ClusterFrontend cluster(options);
  cluster.register_model("sor", family_spec(125));

  auto run_observations = [&](std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      const ClusterResult r = cluster.predict(request_for("sor", 0.6));
      ASSERT_TRUE(r.result.ok()) << r.result.error;
      ASSERT_TRUE(cluster.report_observation(r.result.request_id,
                                             r.result.point * 1.3));
    }
  };

  run_observations(24);
  {
    auto* service = cluster.node(0).service();
    ASSERT_NE(service, nullptr);
    ASSERT_EQ(service->bank()->snapshot().size(), 1u);
    EXPECT_EQ(service->bank()->snapshot()[0].observations, 24u);
    EXPECT_FALSE(service->arbiter()->table().empty());
  }

  cluster.inject({FaultEvent::Kind::kCrash, 0, 0, 0.0});
  cluster.inject({FaultEvent::Kind::kRestart, 0, 0, 0.0});

  // Fresh service, blank learn state: nothing carried over.
  auto* service = cluster.node(0).service();
  ASSERT_NE(service, nullptr);
  EXPECT_TRUE(service->bank()->snapshot().empty());
  EXPECT_TRUE(service->arbiter()->table().empty());
  EXPECT_EQ(service->arbiter()->source("sor"),
            learn::Source::kStructural);

  // And it re-converges from fresh observations alone.
  run_observations(24);
  ASSERT_EQ(service->bank()->snapshot().size(), 1u);
  EXPECT_EQ(service->bank()->snapshot()[0].observations, 24u);
  EXPECT_FALSE(service->arbiter()->table().empty());
}

}  // namespace
}  // namespace sspred::dserve
