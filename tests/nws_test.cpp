// Unit tests for the Network Weather Service clone: forecasters, dynamic
// selection, sensors.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "nws/forecasters.hpp"
#include "nws/sensor.hpp"
#include "nws/service.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace sspred::nws {
namespace {

TEST(Forecasters, LastValue) {
  const std::vector<double> h{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(LastValue().predict(h), 3.0);
}

TEST(Forecasters, RunningMean) {
  const std::vector<double> h{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(RunningMean().predict(h), 2.5);
}

TEST(Forecasters, SlidingMeanUsesWindowOnly) {
  const std::vector<double> h{100.0, 1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(SlidingMean(3).predict(h), 2.0);
  EXPECT_DOUBLE_EQ(SlidingMean(10).predict(h), 26.5);  // whole history
}

TEST(Forecasters, SlidingMedianRobustToSpike) {
  const std::vector<double> h{1.0, 1.0, 50.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(SlidingMedian(5).predict(h), 1.0);
}

TEST(Forecasters, ExpSmoothingConvergesToConstant) {
  std::vector<double> h(50, 4.2);
  EXPECT_NEAR(ExpSmoothing(0.3).predict(h), 4.2, 1e-9);
}

TEST(Forecasters, ExpSmoothingTracksTrend) {
  std::vector<double> h;
  for (int i = 0; i < 20; ++i) h.push_back(static_cast<double>(i));
  // High-gain smoothing should be close to the latest values.
  EXPECT_GT(ExpSmoothing(0.8).predict(h), 15.0);
}

TEST(Forecasters, InvalidConstruction) {
  EXPECT_THROW(SlidingMean(0), support::Error);
  EXPECT_THROW(ExpSmoothing(0.0), support::Error);
  EXPECT_THROW(ExpSmoothing(1.5), support::Error);
}

TEST(Forecasters, DefaultBankHasVariety) {
  const auto bank = default_bank();
  EXPECT_GE(bank.size(), 8u);
  std::vector<std::string> names;
  for (const auto& f : bank) names.push_back(f->name());
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

TEST(Service, HistoryCapEnforced) {
  ServiceOptions opts;
  opts.history_capacity = 16;
  Service svc(opts);
  for (int i = 0; i < 100; ++i) {
    svc.observe("cpu/x", static_cast<double>(i));
  }
  EXPECT_EQ(svc.history_size("cpu/x"), 16u);
  EXPECT_DOUBLE_EQ(svc.history("cpu/x").front(), 84.0);  // oldest kept
}

TEST(Service, UnknownResourceThrows) {
  Service svc;
  EXPECT_THROW((void)svc.history("cpu/nope"), support::Error);
  EXPECT_THROW((void)svc.forecast("cpu/nope"), support::Error);
  EXPECT_EQ(svc.history_size("cpu/nope"), 0u);
}

TEST(Service, ForecastOfConstantSeriesIsExact) {
  Service svc;
  for (int i = 0; i < 60; ++i) svc.observe("cpu/c", 0.48);
  const Forecast f = svc.forecast("cpu/c");
  EXPECT_DOUBLE_EQ(f.value, 0.48);
  EXPECT_DOUBLE_EQ(f.error_sd, 0.0);
  EXPECT_TRUE(f.sv().is_point());
}

TEST(Service, ForecastTracksNoisyStationarySeries) {
  Service svc;
  support::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    svc.observe("cpu/n", rng.normal(0.48, 0.025));
  }
  const Forecast f = svc.forecast("cpu/n");
  EXPECT_NEAR(f.value, 0.48, 0.02);
  EXPECT_GT(f.error_sd, 0.0);
  EXPECT_LT(f.error_sd, 0.08);
  // The ±2sd stochastic value should cover the process mean comfortably.
  EXPECT_TRUE(f.sv().contains(0.48));
}

TEST(Service, MeanBeatsLastValueOnWhiteNoise) {
  Service svc;
  support::Rng rng(7);
  for (int i = 0; i < 300; ++i) svc.observe("cpu/w", rng.normal(0.5, 0.1));
  const auto errors = svc.postcast_errors("cpu/w");
  double last_mse = -1.0;
  double best_mean_mse = 1e9;
  for (const auto& [name, mse] : errors) {
    if (name == "last") last_mse = mse;
    if (name.find("mean") != std::string::npos) {
      best_mean_mse = std::min(best_mean_mse, mse);
    }
  }
  ASSERT_GE(last_mse, 0.0);
  EXPECT_LT(best_mean_mse, last_mse);
}

TEST(Service, LastValueWinsOnRandomWalk) {
  Service svc;
  support::Rng rng(9);
  double x = 0.0;
  for (int i = 0; i < 300; ++i) {
    x += rng.normal(0.0, 1.0);
    svc.observe("cpu/rw", x);
  }
  const Forecast f = svc.forecast("cpu/rw");
  // On a random walk, trackers (last value / high-gain smoothing) dominate
  // long averages.
  EXPECT_TRUE(f.forecaster == "last" || f.forecaster.find("expsm") == 0 ||
              f.forecaster == "mean5" || f.forecaster == "median5")
      << "winner was " << f.forecaster;
}

TEST(Service, ForecastRequiresWarmup) {
  Service svc;
  for (int i = 0; i < 5; ++i) svc.observe("cpu/short", 1.0);
  EXPECT_THROW((void)svc.forecast("cpu/short"), support::Error);
}

TEST(Sensor, IngestSamplesTraceWindow) {
  sim::Engine eng;
  cluster::Platform platform(eng, cluster::dedicated_platform(1), 1);
  Service svc;
  ingest_cpu_history(platform.machine(0), svc, 0.0, 250.0, 5.0);
  EXPECT_EQ(svc.history_size(cpu_resource(platform.machine(0))), 50u);
}

TEST(Sensor, ProcessSamplesAtInterval) {
  sim::Engine eng;
  cluster::Platform platform(eng, cluster::dedicated_platform(1), 1);
  Service svc;
  eng.spawn(cpu_sensor(eng, platform.machine(0), svc, 5.0, 100.0));
  eng.run();
  EXPECT_EQ(svc.history_size(cpu_resource(platform.machine(0))), 20u);
  EXPECT_GE(eng.now(), 100.0);
}

TEST(Sensor, AttachCoversAllHosts) {
  sim::Engine eng;
  cluster::Platform platform(eng, cluster::dedicated_platform(3), 1);
  Service svc;
  attach_cpu_sensors(eng, platform, svc, 5.0, 50.0);
  eng.run();
  for (std::size_t i = 0; i < platform.size(); ++i) {
    EXPECT_EQ(svc.history_size(cpu_resource(platform.machine(i))), 10u);
  }
}

TEST(Sensor, ForecastFromGeneratedQuietTraceIsTight) {
  sim::Engine eng;
  cluster::Platform platform(eng, cluster::platform1(), 5);
  Service svc;
  // Host 0 carries the paper's centre-mode load 0.48 ± 0.05.
  ingest_cpu_history(platform.machine(0), svc, 0.0, 400.0, 5.0);
  const Forecast f = svc.forecast(cpu_resource(platform.machine(0)));
  EXPECT_NEAR(f.value, 0.48, 0.05);
  EXPECT_LT(f.sv().halfwidth(), 0.15);
}

}  // namespace
}  // namespace sspred::nws
