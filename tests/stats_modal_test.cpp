// Unit tests for the modal stochastic-process generator (the synthetic
// production-load substrate).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "stats/descriptive.hpp"
#include "stats/modal_sampler.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace sspred::stats {
namespace {

ModalProcessSpec single_mode(double center, double sd, Tail tail = Tail::kNone) {
  ModalProcessSpec spec;
  ModeState m;
  m.shape.center = center;
  m.shape.sd = sd;
  m.shape.tail = tail;
  m.mean_dwell = 100.0;
  spec.modes.push_back(m);
  spec.lo = -1e9;
  spec.hi = 1e9;
  return spec;
}

TEST(SampleMode, NormalModeMatchesMoments) {
  support::Rng rng(3);
  ModeShape shape;
  shape.center = 0.5;
  shape.sd = 0.05;
  std::vector<double> xs;
  for (int i = 0; i < 100'000; ++i) xs.push_back(sample_mode(shape, rng));
  const Summary s = summarize(xs);
  EXPECT_NEAR(s.mean, 0.5, 0.002);
  EXPECT_NEAR(s.sd, 0.05, 0.002);
  EXPECT_NEAR(s.skewness, 0.0, 0.05);
}

TEST(SampleMode, DownTailMeanPreservedAndLeftSkewed) {
  support::Rng rng(5);
  ModeShape shape;
  shape.center = 0.5;
  shape.sd = 0.05;
  shape.tail = Tail::kDown;
  std::vector<double> xs;
  for (int i = 0; i < 100'000; ++i) xs.push_back(sample_mode(shape, rng));
  const Summary s = summarize(xs);
  EXPECT_NEAR(s.mean, 0.5, 0.01);
  EXPECT_LT(s.skewness, -1.0);  // long tail toward low values
  // Bounded above near the centre: max is center + sd*(alpha/(alpha-1) - 1).
  EXPECT_LT(s.max, 0.5 + 0.05 * 1.0);
}

TEST(SampleMode, DownTailMedianAboveMean) {
  // Paper §2.1.1: threshold value with the median between mean and bound.
  support::Rng rng(7);
  ModeShape shape;
  shape.center = 5.25;
  shape.sd = 0.4;
  shape.tail = Tail::kDown;
  std::vector<double> xs;
  for (int i = 0; i < 50'000; ++i) xs.push_back(sample_mode(shape, rng));
  EXPECT_GT(median(xs), mean(xs));
}

TEST(SampleMode, LaplaceTailIsLeptokurticWithZeroMeanShift) {
  support::Rng rng(8);
  ModeShape shape;
  shape.center = 0.5;
  shape.sd = 0.05;
  shape.tail = Tail::kLaplace;
  std::vector<double> xs;
  for (int i = 0; i < 200'000; ++i) xs.push_back(sample_mode(shape, rng));
  const Summary s = summarize(xs);
  EXPECT_NEAR(s.mean, 0.5, 0.003);
  EXPECT_GT(s.kurtosis, 2.0);   // heavier than normal
  EXPECT_LT(s.skewness, 0.0);   // down side is the heavy one
  // The leptokurtic ±2sd interval covers less than a normal's ~95%.
  const double cover =
      fraction_within(xs, s.mean - 2.0 * s.sd, s.mean + 2.0 * s.sd);
  EXPECT_LT(cover, 0.955);
  EXPECT_GT(cover, 0.90);
}

TEST(SampleMode, UpTailIsMirrored) {
  support::Rng rng(9);
  ModeShape shape;
  shape.center = 1.0;
  shape.sd = 0.1;
  shape.tail = Tail::kUp;
  std::vector<double> xs;
  for (int i = 0; i < 50'000; ++i) xs.push_back(sample_mode(shape, rng));
  const Summary s = summarize(xs);
  EXPECT_NEAR(s.mean, 1.0, 0.01);
  EXPECT_GT(s.skewness, 1.0);
}

TEST(ModalProcess, SingleModeStays) {
  ModalProcess p(single_mode(0.48, 0.025), 11);
  for (int i = 0; i < 1'000; ++i) {
    (void)p.next(1.0);
    EXPECT_EQ(p.current_mode(), 0u);
  }
}

TEST(ModalProcess, ClampsToRange) {
  ModalProcessSpec spec = single_mode(0.5, 5.0);  // huge spread
  spec.lo = 0.0;
  spec.hi = 1.0;
  ModalProcess p(spec, 13);
  for (int i = 0; i < 2'000; ++i) {
    const double v = p.next(1.0);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(ModalProcess, VisitsAllModes) {
  ModalProcessSpec spec;
  for (double c : {0.2, 0.5, 0.8}) {
    ModeState m;
    m.shape.center = c;
    m.shape.sd = 0.01;
    m.mean_dwell = 5.0;
    spec.modes.push_back(m);
  }
  spec.lo = 0.0;
  spec.hi = 1.0;
  ModalProcess p(spec, 17);
  std::vector<bool> seen(3, false);
  for (int i = 0; i < 5'000; ++i) {
    (void)p.next(1.0);
    seen[p.current_mode()] = true;
  }
  EXPECT_TRUE(seen[0] && seen[1] && seen[2]);
}

TEST(ModalProcess, OccupancyTracksWeightTimesDwell) {
  ModalProcessSpec spec;
  ModeState a;
  a.shape.center = 0.2;
  a.shape.sd = 0.01;
  a.mean_dwell = 10.0;
  a.weight = 1.0;
  ModeState b = a;
  b.shape.center = 0.8;
  b.mean_dwell = 30.0;  // 3x the dwell -> 3x the occupancy
  spec.modes = {a, b};
  spec.lo = 0.0;
  spec.hi = 1.0;

  const auto stationary = ModalProcess(spec, 1).stationary_occupancy();
  EXPECT_NEAR(stationary[0], 0.25, 1e-12);
  EXPECT_NEAR(stationary[1], 0.75, 1e-12);

  ModalProcess p(spec, 19);
  std::size_t in_b = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    (void)p.next(1.0);
    if (p.current_mode() == 1) ++in_b;
  }
  EXPECT_NEAR(static_cast<double>(in_b) / n, 0.75, 0.03);
}

TEST(ModalProcess, DeterministicPerSeed) {
  ModalProcessSpec spec = single_mode(0.5, 0.1);
  ModalProcess a(spec, 23);
  ModalProcess b(spec, 23);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.next(1.0), b.next(1.0));
}

TEST(ModalProcess, GenerateSamplesCount) {
  ModalProcess p(single_mode(0.5, 0.1), 29);
  const auto xs = generate_samples(p, 500, 1.0);
  EXPECT_EQ(xs.size(), 500u);
}

TEST(ModalProcess, InvalidSpecsThrow) {
  ModalProcessSpec empty;
  EXPECT_THROW(ModalProcess(empty, 1), support::Error);

  ModalProcessSpec bad = single_mode(0.5, 0.1);
  bad.modes[0].shape.sd = 0.0;
  EXPECT_THROW(ModalProcess(bad, 1), support::Error);

  ModalProcessSpec bad2 = single_mode(0.5, 0.1);
  bad2.modes[0].mean_dwell = -1.0;
  EXPECT_THROW(ModalProcess(bad2, 1), support::Error);

  ModalProcessSpec bad3 = single_mode(0.5, 0.1);
  bad3.lo = 2.0;
  bad3.hi = 1.0;
  EXPECT_THROW(ModalProcess(bad3, 1), support::Error);
}

TEST(ModalProcess, DtMustBePositive) {
  ModalProcess p(single_mode(0.5, 0.1), 31);
  EXPECT_THROW((void)p.next(0.0), support::Error);
}

}  // namespace
}  // namespace sspred::stats
