// Tests for the concurrent prediction service (src/serve/): metrics,
// bindings epochs, the compiled-program cache (including the concurrent
// first-compilation race), coalescing, admission control, Monte-Carlo
// fan-out, structured worker-side errors, and the nws::Service
// multi-reader contract. The concurrency tests here are the ones CI runs
// under ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "cluster/platform.hpp"
#include "nws/service.hpp"
#include "serve/epoch.hpp"
#include "serve/metrics.hpp"
#include "serve/program_cache.hpp"
#include "serve/service.hpp"
#include "support/clock.hpp"
#include "support/error.hpp"

namespace sspred::serve {
namespace {

ModelSpec small_spec(std::size_t n = 200, std::size_t hosts = 2) {
  ModelSpec spec;
  spec.app = ModelSpec::App::kSor;
  spec.platform = cluster::dedicated_platform(hosts);
  spec.config.n = n;
  spec.config.iterations = 5;
  return spec;
}

std::vector<stoch::StochasticValue> loads_for(std::size_t hosts) {
  std::vector<stoch::StochasticValue> loads;
  for (std::size_t i = 0; i < hosts; ++i) {
    loads.push_back(stoch::StochasticValue(0.8 + 0.05 * double(i), 0.1));
  }
  return loads;
}

PredictRequest stochastic_request(const std::string& id,
                                  std::vector<stoch::StochasticValue> loads) {
  PredictRequest request;
  request.model_id = id;
  request.loads = std::move(loads);
  return request;
}

PredictRequest resource_request(const std::string& id,
                                std::vector<std::string> resources) {
  PredictRequest request;
  request.model_id = id;
  request.resources = std::move(resources);
  return request;
}

ServiceOptions options_with(std::size_t workers) {
  ServiceOptions options;
  options.workers = workers;
  return options;
}

TEST(ServeClock, FakeClockIsDeterministic) {
  support::FakeClock clock(10.0);
  EXPECT_DOUBLE_EQ(clock.now(), 10.0);
  clock.advance(2.5);
  EXPECT_DOUBLE_EQ(clock.now(), 12.5);
  clock.set(20.0);
  EXPECT_DOUBLE_EQ(clock.now(), 20.0);
  clock.set(5.0);  // never moves backwards
  EXPECT_DOUBLE_EQ(clock.now(), 20.0);
  clock.advance(-1.0);  // ignored
  EXPECT_DOUBLE_EQ(clock.now(), 20.0);
}

TEST(ServeClock, RealClockIsMonotonic) {
  support::RealClock clock;
  const double a = clock.now();
  const double b = clock.now();
  EXPECT_GE(b, a);
}

TEST(ServeMetrics, CountersAndGauges) {
  MetricsRegistry registry;
  registry.counter("reqs").increment();
  registry.counter("reqs").increment(4);
  EXPECT_EQ(registry.counter("reqs").value(), 5u);
  registry.gauge("depth").set(7);
  registry.gauge("depth").sub(3);
  EXPECT_EQ(registry.gauge("depth").value(), 4);
  // Addresses are stable: hot paths may cache references.
  Counter& c = registry.counter("reqs");
  EXPECT_EQ(&c, &registry.counter("reqs"));
}

TEST(ServeMetrics, LatencyQuantilesFromBuckets) {
  LatencyHistogram h(1.0, 1000);  // 1 ms buckets
  for (int i = 1; i <= 100; ++i) h.observe(double(i) / 1000.0);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.min(), 0.001);
  EXPECT_DOUBLE_EQ(h.max(), 0.100);
  EXPECT_NEAR(h.quantile(0.50), 0.050, 0.002);
  EXPECT_NEAR(h.quantile(0.95), 0.095, 0.002);
  EXPECT_NEAR(h.quantile(0.99), 0.099, 0.002);
  EXPECT_NEAR(h.mean(), 0.0505, 1e-9);
  // Values beyond the range clamp into the top bucket, saturating p100.
  h.observe(5.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 5.0);
}

TEST(ServeMetrics, RegistrySnapshotNamesEverything) {
  MetricsRegistry registry;
  registry.counter("a").increment();
  registry.gauge("b").set(2);
  registry.histogram("c", 1.0, 8).observe(0.5);
  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "a");
  EXPECT_EQ(snap[0].kind, "counter");
  EXPECT_EQ(snap[2].kind, "histogram");
  EXPECT_FALSE(registry.render().empty());
}

TEST(ServeMetrics, EmptyHistogramIsAllZeros) {
  LatencyHistogram h(1.0, 16);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  // Quantiles of an empty histogram are 0, never NaN.
  for (const double q : {0.0, 0.5, 0.95, 1.0}) {
    const double v = h.quantile(q);
    EXPECT_FALSE(std::isnan(v));
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
  EXPECT_THROW((void)h.quantile(1.5), support::Error);
  EXPECT_THROW((void)h.quantile(-0.1), support::Error);
}

TEST(ServeMetrics, SingleSampleHistogramClampsAllQuantilesToIt) {
  LatencyHistogram h(1.0, 16);
  h.observe(0.3);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.3);
  // Every quantile of a one-sample distribution is that sample: bucket
  // interpolation must clamp to the observed extremes, not bucket edges.
  for (const double q : {0.0, 0.01, 0.5, 0.95, 1.0}) {
    EXPECT_DOUBLE_EQ(h.quantile(q), 0.3) << "q=" << q;
  }
}

TEST(ServeMetrics, OverflowObservationsSaturateTheTopBucket) {
  LatencyHistogram h(1.0, 16);  // tracked range [0, 1)
  h.observe(0.5);
  h.observe(50.0);
  h.observe(100.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  // Out-of-range values clamp into the top bucket; high quantiles
  // saturate at the exact observed max rather than the bucket edge.
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
  EXPECT_LE(h.quantile(0.9), 100.0);
  EXPECT_GE(h.quantile(0.9), 0.5);
  EXPECT_FALSE(std::isnan(h.quantile(0.99)));
}

TEST(ServeMetrics, RenderJsonListsEveryInstrumentWithoutNans) {
  MetricsRegistry registry;
  registry.counter("reqs").increment(3);
  registry.gauge("depth").set(-2);
  (void)registry.histogram("lat", 1.0, 8);  // deliberately left empty
  registry.histogram("sizes", 16.0, 16).observe(4.0);
  const std::string json = registry.render_json();
  EXPECT_NE(json.find("\"name\": \"reqs\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"value\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"value\": -2"), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  // An empty histogram must render as zeros, not NaN (invalid JSON).
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
}

TEST(ServeProgramCache, StructurallyIdenticalSpecsShareOneProgram) {
  ProgramCache cache;
  const auto a = cache.get_or_compile(small_spec());
  EXPECT_FALSE(a.hit);
  const auto b = cache.get_or_compile(small_spec());
  EXPECT_TRUE(b.hit);
  EXPECT_EQ(a.model.get(), b.model.get());
  EXPECT_EQ(cache.compile_count(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ServeProgramCache, DifferentStructureMisses) {
  ProgramCache cache;
  (void)cache.get_or_compile(small_spec(200));
  const auto other = cache.get_or_compile(small_spec(400));
  EXPECT_FALSE(other.hit);
  EXPECT_EQ(cache.compile_count(), 2u);

  ModelSpec jacobi = small_spec(200);
  jacobi.app = ModelSpec::App::kJacobi;
  (void)cache.get_or_compile(jacobi);
  EXPECT_EQ(cache.compile_count(), 3u);
}

TEST(ServeProgramCache, ConcurrentFirstCompilationIsSingleFlight) {
  ProgramCache cache;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<CompiledModelPtr> models(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &models, t] {
      models[size_t(t)] = cache.get_or_compile(small_spec(300)).model;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(cache.compile_count(), 1u);
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(models[size_t(t)].get(), models[0].get());
  }
}

TEST(ServeEpoch, BridgePublishesVersionedConsistentSnapshots) {
  nws::ServiceOptions nws_options;
  nws_options.history_capacity = 64;
  nws_options.warmup = 4;
  nws::Service nws_service(nws_options);
  for (int i = 0; i < 16; ++i) {
    nws_service.observe("cpu/a", 0.8);
    nws_service.observe("cpu/b", 0.5);
  }
  NwsBridge bridge(nws_service, {"cpu/a", "cpu/b", "cpu/cold"});
  EXPECT_EQ(bridge.current(), nullptr);

  const auto first = bridge.publish();
  EXPECT_EQ(first->version(), 1u);
  EXPECT_TRUE(first->contains("cpu/a"));
  EXPECT_NEAR(first->lookup("cpu/a").mean(), 0.8, 1e-6);
  // No history yet: absent from the epoch, and lookup errors name it.
  EXPECT_FALSE(first->contains("cpu/cold"));
  EXPECT_THROW((void)first->lookup("cpu/cold"), support::Error);

  const auto second = bridge.publish();
  EXPECT_EQ(second->version(), 2u);
  EXPECT_EQ(bridge.current().get(), second.get());
  // The first epoch is immutable and still readable by in-flight work.
  EXPECT_NEAR(first->lookup("cpu/b").mean(), 0.5, 1e-6);
}

// Epoch pinning: a request must never observe bindings from two epochs,
// and must be served under exactly the epoch current at submit time.
// Every epoch version carries distinct load values, so any tearing or
// re-reading of "current" mid-evaluation produces a value that matches
// no version's expectation.
TEST(ServeEpoch, RequestsPinTheSubmitTimeEpochUnderConcurrentPublishes) {
  constexpr std::uint64_t kEpochs = 100;
  const auto spec = small_spec();

  const auto loads_for_version = [](std::uint64_t k) {
    const double base = 0.5 + 0.4 * double(k) / double(kEpochs);
    return std::vector<stoch::StochasticValue>{
        stoch::StochasticValue(base, 0.05),
        stoch::StochasticValue(base - 0.1, 0.05)};
  };

  // Reference evaluation per version, outside the service.
  const predict::SorStructuralModel direct(spec.platform, spec.config,
                                           spec.options);
  std::map<std::uint64_t, stoch::StochasticValue> expected;
  for (std::uint64_t k = 1; k <= kEpochs; ++k) {
    expected.emplace(k, direct.predict(direct.make_slot_env(
                            loads_for_version(k), stoch::StochasticValue(1.0))));
  }

  const auto epoch_for = [&](std::uint64_t k) {
    const auto loads = loads_for_version(k);
    return std::make_shared<const BindingsEpoch>(
        k, std::map<std::string, stoch::StochasticValue>{
               {"cpu/a", loads[0]}, {"cpu/b", loads[1]}});
  };

  ServiceOptions options;
  options.workers = 4;
  PredictionService service(options);
  service.register_model("sor", spec);
  service.publish_epoch(epoch_for(1));

  std::atomic<bool> stop{false};
  std::thread publisher([&] {
    for (std::uint64_t k = 2; k <= kEpochs && !stop.load(); ++k) {
      service.publish_epoch(epoch_for(k));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    stop.store(true);
  });

  constexpr int kSubmitters = 3;
  std::vector<std::thread> submitters;
  std::atomic<int> checked{0};
  std::atomic<bool> mismatch{false};
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&] {
      while (!stop.load()) {
        auto result =
            service.submit(resource_request("sor", {"cpu/a", "cpu/b"})).get();
        if (!result.ok()) continue;  // rejected under shutdown only
        const auto it = expected.find(result.epoch_version);
        if (it == expected.end() || result.value != it->second) {
          mismatch.store(true);
        }
        checked.fetch_add(1);
      }
    });
  }
  publisher.join();
  for (auto& t : submitters) t.join();
  EXPECT_FALSE(mismatch.load());
  EXPECT_GT(checked.load(), 0);
}

// Concurrent set_transform / publish / current on the bridge (TSan).
TEST(ServeEpoch, BridgeTransformInstallAndPublishAreRaceFree) {
  nws::ServiceOptions nws_options;
  nws_options.history_capacity = 64;
  nws_options.warmup = 4;
  nws::Service nws_service(nws_options);
  for (int i = 0; i < 16; ++i) {
    nws_service.observe("cpu/a", 0.8 + (i % 2 == 0 ? 0.05 : -0.05));
  }
  NwsBridge bridge(nws_service, {"cpu/a"});
  const auto base = bridge.publish()->lookup("cpu/a");

  std::atomic<bool> stop{false};
  std::thread flipper([&] {
    for (int i = 0; i < 500; ++i) {
      bridge.set_transform(
          [](std::map<std::string, stoch::StochasticValue>& values) {
            for (auto& [name, v] : values) {
              v = stoch::StochasticValue(v.mean(), 2.0 * v.halfwidth());
            }
          });
      bridge.set_transform(nullptr);
    }
    stop.store(true);
  });
  std::thread publisher([&] {
    while (!stop.load()) (void)bridge.publish();
  });
  std::atomic<bool> bad{false};
  std::thread reader([&] {
    while (!stop.load()) {
      const auto epoch = bridge.current();
      if (!epoch) continue;
      const auto v = epoch->lookup("cpu/a");
      // Either the raw forecast or the doubled one; nothing in between.
      if (v.mean() != base.mean() ||
          (v.halfwidth() != base.halfwidth() &&
           v.halfwidth() != 2.0 * base.halfwidth())) {
        bad.store(true);
      }
    }
  });
  flipper.join();
  publisher.join();
  reader.join();
  EXPECT_FALSE(bad.load());
}

TEST(ServeService, StochasticPredictionMatchesDirectModel) {
  const auto spec = small_spec();
  const auto loads = loads_for(2);

  PredictionService service(options_with(2));
  service.register_model("sor", spec);
  const auto result =
      service.submit(stochastic_request("sor", loads)).get();
  ASSERT_TRUE(result.ok()) << result.error;

  const predict::SorStructuralModel direct(spec.platform, spec.config,
                                           spec.options);
  const auto expected =
      direct.predict(direct.make_slot_env(loads, stoch::StochasticValue(1.0)));
  EXPECT_DOUBLE_EQ(result.value.mean(), expected.mean());
  EXPECT_DOUBLE_EQ(result.value.halfwidth(), expected.halfwidth());
}

TEST(ServeService, PointModeMatchesDirectPointPrediction) {
  const auto spec = small_spec();
  const auto loads = loads_for(2);
  PredictionService service(options_with(1));
  service.register_model("sor", spec);
  auto request = stochastic_request("sor", loads);
  request.mode = Mode::kPoint;
  const auto result = service.submit(std::move(request)).get();
  ASSERT_TRUE(result.ok()) << result.error;
  const predict::SorStructuralModel direct(spec.platform, spec.config,
                                           spec.options);
  const double expected = direct.predict_point(
      direct.make_slot_env(loads, stoch::StochasticValue(1.0)));
  EXPECT_DOUBLE_EQ(result.point, expected);
  EXPECT_DOUBLE_EQ(result.value.halfwidth(), 0.0);
}

TEST(ServeService, ChunkedMonteCarloIsDeterministicAndSane) {
  ServiceOptions options;
  options.workers = 4;
  options.mc_chunk_trials = 1000;
  PredictionService service(options);
  service.register_model("sor", small_spec());
  auto request = stochastic_request("sor", loads_for(2));
  request.mode = Mode::kMonteCarlo;
  request.trials = 8000;
  request.seed = 42;
  const auto a = service.submit(request).get();
  const auto b = service.submit(request).get();
  ASSERT_TRUE(a.ok()) << a.error;
  // Fixed (seed, chunk layout) -> identical result, independent of which
  // worker ran which chunk.
  EXPECT_DOUBLE_EQ(a.value.mean(), b.value.mean());
  EXPECT_DOUBLE_EQ(a.value.halfwidth(), b.value.halfwidth());
  EXPECT_EQ(service.metrics().counter("mc_chunks_executed").value(), 16u);

  // The sampled mean should agree with the stochastic calculus roughly.
  const auto calc =
      service.submit(stochastic_request("sor", loads_for(2))).get();
  EXPECT_NEAR(a.value.mean(), calc.value.mean(),
              0.25 * calc.value.mean() + 1e-9);
}

TEST(ServeService, ChunkedMonteCarloIsIndependentOfWorkerCount) {
  // The blocked engine samples each chunk from its own derived seed and
  // the partials combine in chunk-index order, so the result is a pure
  // function of (seed, trials, chunk size) — scheduling, worker count and
  // which worker's pooled arenas ran a chunk must all be invisible.
  auto run_with = [](std::size_t workers) {
    ServiceOptions options;
    options.workers = workers;
    options.mc_chunk_trials = 1000;
    PredictionService service(options);
    service.register_model("sor", small_spec());
    auto request = stochastic_request("sor", loads_for(2));
    request.mode = Mode::kMonteCarlo;
    request.trials = 7500;  // uneven tail chunk included
    request.seed = 1234;
    return service.submit(std::move(request)).get();
  };
  const auto one = run_with(1);
  const auto four = run_with(4);
  ASSERT_TRUE(one.ok()) << one.error;
  ASSERT_TRUE(four.ok()) << four.error;
  EXPECT_DOUBLE_EQ(one.value.mean(), four.value.mean());
  EXPECT_DOUBLE_EQ(one.value.halfwidth(), four.value.halfwidth());
}

TEST(ServeService, UnknownModelIdIsStructuredErrorAndPoolSurvives) {
  PredictionService service(options_with(2));
  service.register_model("sor", small_spec());
  const auto bad =
      service.submit(stochastic_request("nope", loads_for(2))).get();
  EXPECT_EQ(bad.status, PredictResult::Status::kError);
  EXPECT_NE(bad.error.find("unknown model id 'nope'"), std::string::npos);
  EXPECT_NE(bad.error.find("sor"), std::string::npos);  // lists registered

  // A poisoned request must not kill the pool: follow-ups still serve.
  const auto good =
      service.submit(stochastic_request("sor", loads_for(2))).get();
  EXPECT_TRUE(good.ok()) << good.error;
}

TEST(ServeService, BindingErrorsAreStructured) {
  PredictionService service(options_with(1));
  service.register_model("sor", small_spec());

  const auto wrong_count =
      service.submit(stochastic_request("sor", loads_for(3))).get();
  EXPECT_EQ(wrong_count.status, PredictResult::Status::kError);
  EXPECT_NE(wrong_count.error.find("needs 2 load bindings, got 3"),
            std::string::npos);

  const auto none = service.submit(stochastic_request("sor", {})).get();
  EXPECT_EQ(none.status, PredictResult::Status::kError);

  // Resource bindings without a published epoch.
  const auto no_epoch =
      service.submit(resource_request("sor", {"cpu/a", "cpu/b"})).get();
  EXPECT_EQ(no_epoch.status, PredictResult::Status::kError);
  EXPECT_NE(no_epoch.error.find("no bindings epoch"), std::string::npos);

  // Published epoch missing the requested resource.
  service.publish_epoch(std::make_shared<const BindingsEpoch>(
      1, std::map<std::string, stoch::StochasticValue>{
             {"cpu/a", stoch::StochasticValue(0.9, 0.1)}}));
  const auto missing =
      service.submit(resource_request("sor", {"cpu/a", "cpu/b"})).get();
  EXPECT_EQ(missing.status, PredictResult::Status::kError);
  EXPECT_NE(missing.error.find("cpu/b"), std::string::npos);
}

TEST(ServeService, CoalescingSharesOneEvaluation) {
  ServiceOptions options;
  options.workers = 2;
  options.start_paused = true;
  PredictionService service(options);
  service.register_model("sor", small_spec());
  const auto request = stochastic_request("sor", loads_for(2));

  std::vector<std::future<PredictResult>> same;
  for (int i = 0; i < 6; ++i) same.push_back(service.submit(request));
  auto different = request;
  different.loads[0] = stoch::StochasticValue(0.5, 0.2);
  auto other = service.submit(std::move(different));

  service.resume();
  for (auto& f : same) {
    const auto r = f.get();
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.batch_size, 6u);
  }
  const auto r = other.get();
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.batch_size, 1u);  // different bindings never coalesce
  EXPECT_EQ(service.metrics().counter("requests_coalesced").value(), 5u);
}

TEST(ServeService, BoundedQueueShedsOverload) {
  ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = 4;
  options.start_paused = true;
  PredictionService service(options);
  service.register_model("sor", small_spec());
  // Distinct seeds so coalescing cannot merge them once resumed.
  std::vector<std::future<PredictResult>> futures;
  for (int i = 0; i < 10; ++i) {
    auto request = stochastic_request("sor", loads_for(2));
    request.mode = Mode::kMonteCarlo;
    request.trials = 16;
    request.seed = std::uint64_t(i);
    futures.push_back(service.submit(std::move(request)));
  }
  std::size_t rejected = 0;
  // Shed requests resolve immediately, while the service is still paused.
  for (int i = 4; i < 10; ++i) {
    const auto r = futures[size_t(i)].get();
    EXPECT_EQ(r.status, PredictResult::Status::kRejected);
    EXPECT_NE(r.error.find("queue full"), std::string::npos);
    ++rejected;
  }
  EXPECT_EQ(rejected, 6u);
  EXPECT_EQ(service.metrics().counter("requests_rejected").value(), 6u);
  // The shed path is attributed to its SPECIFIC reason, not just the
  // aggregate: these were capacity rejections, nothing else.
  EXPECT_EQ(service.metrics().counter("rejected_queue_full").value(), 6u);
  EXPECT_EQ(service.metrics().counter("rejected_stopped").value(), 0u);
  EXPECT_EQ(service.metrics().counter("rejected_shard_unavailable").value(),
            0u);
  EXPECT_NE(service.metrics().render_json().find(
                "\"name\": \"rejected_queue_full\", \"kind\": \"counter\", "
                "\"value\": 6"),
            std::string::npos);
  service.resume();
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(futures[size_t(i)].get().ok());
  }
}

TEST(ServeService, RequestsKeepTheEpochTheyWereAdmittedUnder) {
  ServiceOptions options;
  options.workers = 1;
  options.start_paused = true;
  PredictionService service(options);
  service.register_model("sor", small_spec());
  const auto make_epoch = [](std::uint64_t version) {
    return std::make_shared<const BindingsEpoch>(
        version, std::map<std::string, stoch::StochasticValue>{
                     {"cpu/a", stoch::StochasticValue(0.9, 0.05)},
                     {"cpu/b", stoch::StochasticValue(0.7, 0.05)}});
  };
  service.publish_epoch(make_epoch(1));
  auto first = service.submit(resource_request("sor", {"cpu/a", "cpu/b"}));
  service.publish_epoch(make_epoch(2));
  auto second = service.submit(resource_request("sor", {"cpu/a", "cpu/b"}));
  service.resume();
  const auto r1 = first.get();
  const auto r2 = second.get();
  ASSERT_TRUE(r1.ok() && r2.ok()) << r1.error << r2.error;
  EXPECT_EQ(r1.epoch_version, 1u);
  EXPECT_EQ(r2.epoch_version, 2u);
  // Same bindings but different epochs: they must not have coalesced.
  EXPECT_EQ(r1.batch_size, 1u);
  EXPECT_EQ(r2.batch_size, 1u);
}

TEST(ServeService, FakeClockMakesLatencyMetricsDeterministic) {
  auto clock = std::make_shared<support::FakeClock>();
  ServiceOptions options;
  options.workers = 1;
  options.clock = clock;
  options.start_paused = true;
  PredictionService service(options);
  service.register_model("sor", small_spec());
  auto future = service.submit(stochastic_request("sor", loads_for(2)));
  clock->advance(0.25);  // the request "waits" a quarter second in queue
  service.resume();
  const auto result = future.get();
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_DOUBLE_EQ(result.latency_seconds, 0.25);
  EXPECT_DOUBLE_EQ(service.metrics().histogram("latency_seconds").max(), 0.25);
}

TEST(ServeService, CacheOffCompilesPerRequestCacheOnHitsAfterWarmup) {
  {
    ServiceOptions options;
    options.workers = 1;
    options.enable_cache = false;
    PredictionService service(options);
    service.register_model("sor", small_spec());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(service.submit(stochastic_request("sor", loads_for(2)))
                      .get()
                      .ok());
    }
    EXPECT_EQ(service.metrics().counter("cache_misses").value(), 3u);
    EXPECT_EQ(service.cache().compile_count(), 0u);
  }
  {
    PredictionService service(options_with(1));
    service.register_model("sor", small_spec());
    service.register_model("sor-alias", small_spec());  // same structure
    for (const char* id : {"sor", "sor-alias", "sor", "sor-alias"}) {
      ASSERT_TRUE(
          service.submit(stochastic_request(id, loads_for(2))).get().ok());
    }
    EXPECT_EQ(service.cache().compile_count(), 1u);
    EXPECT_EQ(service.metrics().counter("cache_misses").value(), 1u);
    EXPECT_EQ(service.metrics().counter("cache_hits").value(), 3u);
  }
}

TEST(ServeService, DrainWaitsForQueueAndWorkers) {
  PredictionService service(options_with(2));
  service.register_model("sor", small_spec());
  std::vector<std::future<PredictResult>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(service.submit(stochastic_request("sor", loads_for(2))));
  }
  service.drain();
  for (auto& f : futures) {
    EXPECT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  }
}

// The TSan target: concurrent submitters + an epoch publisher + a live
// nws::Service being observed while forecasted from other threads.
TEST(ServeService, ConcurrentSubmittersPublishersAndNwsReaders) {
  nws::ServiceOptions nws_options;
  nws_options.history_capacity = 64;
  nws_options.warmup = 4;
  nws::Service nws_service(nws_options);
  for (int i = 0; i < 16; ++i) {
    nws_service.observe("cpu/a", 0.85);
    nws_service.observe("cpu/b", 0.65);
  }
  NwsBridge bridge(nws_service, {"cpu/a", "cpu/b"});

  ServiceOptions options;
  options.workers = 4;
  options.mc_chunk_trials = 64;
  PredictionService service(options);
  service.register_model("sor", small_spec());
  service.publish_epoch(bridge.publish());

  std::atomic<bool> stop{false};
  // Writer: keeps observing new measurements and publishing epochs.
  std::thread publisher([&] {
    while (!stop.load()) {
      nws_service.observe("cpu/a", 0.85);
      nws_service.observe("cpu/b", 0.65);
      service.publish_epoch(bridge.publish());
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  // Reader: concurrent forecast/history calls against the same service.
  std::thread reader([&] {
    while (!stop.load()) {
      (void)nws_service.forecast("cpu/a");
      (void)nws_service.history_size("cpu/b");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  constexpr int kSubmitters = 3;
  constexpr int kPerThread = 30;
  std::vector<std::thread> submitters;
  std::atomic<int> ok{0};
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto request = resource_request("sor", {"cpu/a", "cpu/b"});
        if (i % 5 == 0) {
          request.mode = Mode::kMonteCarlo;
          request.trials = 256;  // forces chunk fan-out
          request.seed = std::uint64_t(t * 1000 + i);
        }
        if (service.submit(std::move(request)).get().ok()) ok.fetch_add(1);
      }
    });
  }
  for (auto& t : submitters) t.join();
  stop.store(true);
  publisher.join();
  reader.join();
  EXPECT_EQ(ok.load(), kSubmitters * kPerThread);
}

}  // namespace
}  // namespace sspred::serve
