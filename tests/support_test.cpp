// Unit tests for the support module: RNG streams & distributions, error
// handling, table/CSV/plot rendering, unit conversions.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <set>

#include "support/ascii_plot.hpp"
#include "support/csv.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

namespace sspred::support {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1'000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1'000; ++i) seen.insert(rng.uniform_int(10));
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 9u);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(11);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.03);
  EXPECT_NEAR(var, 4.0, 0.08);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, ParetoRespectsScaleAndHasHeavyTail) {
  Rng rng(17);
  double max_seen = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.pareto(1.0, 2.5);
    EXPECT_GE(x, 1.0);
    max_seen = std::max(max_seen, x);
  }
  EXPECT_GT(max_seen, 10.0);  // a heavy tail produces far-out values
}

TEST(Rng, LognormalMedianIsExpMu) {
  Rng rng(19);
  std::vector<double> xs;
  for (int i = 0; i < 50'000; ++i) xs.push_back(rng.lognormal(1.0, 0.5));
  std::sort(xs.begin(), xs.end());
  EXPECT_NEAR(xs[xs.size() / 2], std::exp(1.0), 0.05);
}

TEST(Rng, ChooseFollowsWeights) {
  Rng rng(23);
  const std::vector<double> weights{1.0, 3.0, 6.0};
  std::array<int, 3> counts{};
  const int n = 60'000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.choose(weights)];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, ChooseZeroWeightNeverPicked) {
  Rng rng(29);
  const std::vector<double> weights{0.0, 1.0};
  for (int i = 0; i < 1'000; ++i) EXPECT_EQ(rng.choose(weights), 1u);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(31);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(37);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Error, RequireThrowsWithContext) {
  try {
    SSPRED_REQUIRE(1 == 2, "one is not two");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("one is not two"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

TEST(Error, RequirePassesSilently) {
  EXPECT_NO_THROW(SSPRED_REQUIRE(true, "fine"));
}

TEST(Units, MbitsRoundTrip) {
  EXPECT_DOUBLE_EQ(mbits_per_sec(10.0), 1.25e6);
  EXPECT_DOUBLE_EQ(to_mbits_per_sec(mbits_per_sec(8.0)), 8.0);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"Machine", "Time"});
  t.add_row({"A", "10"});
  t.add_row({"BBBB", "5"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Machine"), std::string::npos);
  EXPECT_NE(out.find("BBBB"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), Error);
}

TEST(Table, NumericRowFormatting) {
  Table t({"label", "x", "y"});
  t.add_row("row", {1.23456, 2.0}, 2);
  EXPECT_NE(t.render().find("1.23"), std::string::npos);
}

TEST(Format, PlusMinusAndPercent) {
  EXPECT_EQ(fmt_pm(12.0, 0.6, 2), "12.00 ± 0.60");
  EXPECT_EQ(fmt_pct(0.097), "9.7%");
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = "/tmp/sspred_csv_test.csv";
  {
    CsvWriter w(path, {"a", "b"});
    w.write_row({1.5, 2.5});
    w.write_row({3.0, 4.0});
    EXPECT_EQ(w.rows_written(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1.5,2.5");
  std::filesystem::remove(path);
}

TEST(Csv, RowWidthMismatchThrows) {
  CsvWriter w("/tmp/sspred_csv_test2.csv", {"a"});
  EXPECT_THROW(w.write_row({1.0, 2.0}), Error);
  std::filesystem::remove("/tmp/sspred_csv_test2.csv");
}

TEST(AsciiPlot, HistogramRendersBars) {
  const std::vector<double> edges{0.0, 1.0, 2.0};
  const std::vector<double> counts{4.0, 8.0};
  const std::string out = render_histogram(edges, counts);
  EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(AsciiPlot, HistogramRejectsMismatchedEdges) {
  const std::vector<double> edges{0.0, 1.0};
  const std::vector<double> counts{1.0, 2.0};
  EXPECT_THROW((void)render_histogram(edges, counts), Error);
}

TEST(AsciiPlot, SeriesRendersGlyphsAndAxis) {
  std::vector<double> ys;
  for (int i = 0; i < 40; ++i) ys.push_back(std::sin(i * 0.3));
  PlotOptions opts;
  opts.title = "wave";
  const std::string out = render_series(ys, opts);
  EXPECT_NE(out.find("wave"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('+'), std::string::npos);
}

TEST(AsciiPlot, MultiSeriesLegend) {
  Series a{"alpha", {0, 1, 2}, {1, 2, 3}, 'a'};
  Series b{"beta", {0, 1, 2}, {3, 2, 1}, 'b'};
  const std::vector<Series> ss{a, b};
  const std::string out = render_xy(ss);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("beta"), std::string::npos);
}

}  // namespace
}  // namespace sspred::support
