// Unit tests for service ranges / QoS queries over stochastic values
// (paper §1.2's "service range" alternative to QoS guarantees).
#include <gtest/gtest.h>

#include "stoch/montecarlo.hpp"
#include "stoch/service_range.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace sspred::stoch {
namespace {

TEST(ServiceRange, ProbabilityBelowMatchesNormal) {
  const StochasticValue v(100.0, 20.0);  // sd = 10
  EXPECT_NEAR(probability_below(v, 100.0), 0.5, 1e-12);
  EXPECT_NEAR(probability_below(v, 110.0), 0.8413, 1e-3);
  EXPECT_NEAR(probability_above(v, 110.0), 0.1587, 1e-3);
  EXPECT_NEAR(probability_below(v, v.upper()), 0.9772, 1e-3);
}

TEST(ServiceRange, PointValueIsStep) {
  const StochasticValue v(5.0);
  EXPECT_DOUBLE_EQ(probability_below(v, 4.9), 0.0);
  EXPECT_DOUBLE_EQ(probability_below(v, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.01), 5.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.99), 5.0);
}

TEST(ServiceRange, QuantileRoundTrips) {
  const StochasticValue v(50.0, 8.0);
  for (double p : {0.05, 0.25, 0.5, 0.9, 0.99}) {
    EXPECT_NEAR(probability_below(v, quantile(v, p)), p, 1e-9);
  }
  EXPECT_THROW((void)quantile(v, 0.0), support::Error);
  EXPECT_THROW((void)quantile(v, 1.0), support::Error);
}

TEST(ServiceRange, CentralIntervalHoldsRequestedMass) {
  const StochasticValue v(10.0, 2.0);
  const ServiceRange r = service_range(v, 0.99);
  EXPECT_LT(r.lower, v.lower());  // 99% needs more than the ±2sd (95%) band
  EXPECT_GT(r.upper, v.upper());
  EXPECT_NEAR(probability_below(v, r.upper) - probability_below(v, r.lower),
              0.99, 1e-9);
  // Symmetric around the mean.
  EXPECT_NEAR(v.mean() - r.lower, r.upper - v.mean(), 1e-9);
}

TEST(ServiceRange, EmpiricalCoverageMatches) {
  const StochasticValue v(10.0, 2.0);
  const ServiceRange r = service_range(v, 0.9);
  support::Rng rng(3);
  std::size_t inside = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double x = sample(v, rng);
    if (x >= r.lower && x <= r.upper) ++inside;
  }
  EXPECT_NEAR(static_cast<double>(inside) / n, 0.9, 0.01);
}

TEST(ServiceRange, DeadlineForConfidence) {
  // A prediction of 60 ± 10 s: to be on time 97.7% of runs, budget ~70 s.
  const StochasticValue pred(60.0, 10.0);
  const double deadline = deadline_for(pred, 0.977);
  EXPECT_NEAR(deadline, 70.0, 0.15);
  EXPECT_NEAR(probability_above(pred, deadline), 0.023, 1e-3);
}

TEST(ServiceRange, TighterPredictionsGiveTighterGuarantees) {
  const StochasticValue quiet(60.0, 3.0);   // the paper's machine A flavour
  const StochasticValue busy(60.0, 18.0);   // machine B flavour
  EXPECT_LT(deadline_for(quiet, 0.95), deadline_for(busy, 0.95));
  const auto rq = service_range(quiet, 0.95);
  const auto rb = service_range(busy, 0.95);
  EXPECT_LT(rq.upper - rq.lower, rb.upper - rb.lower);
}

TEST(ServiceRange, InvalidConfidenceThrows) {
  const StochasticValue v(1.0, 0.1);
  EXPECT_THROW((void)service_range(v, 0.0), support::Error);
  EXPECT_THROW((void)service_range(v, 1.0), support::Error);
  EXPECT_THROW((void)deadline_for(v, 1.5), support::Error);
}

}  // namespace
}  // namespace sspred::stoch
