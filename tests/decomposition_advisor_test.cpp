// Tests for the time-balancing decomposition advisor (paper footnote 2 +
// the §1.2 conservative strategy applied to strip decomposition).
#include <gtest/gtest.h>

#include <numeric>

#include "predict/decomposition_advisor.hpp"
#include "sor/distributed.hpp"
#include "support/error.hpp"

namespace sspred::predict {
namespace {

std::vector<stoch::StochasticValue> dedicated_loads(std::size_t n) {
  return std::vector<stoch::StochasticValue>(n, stoch::StochasticValue(1.0));
}

TEST(DecompositionAdvisor, UniformIgnoresCapacities) {
  const auto spec = cluster::platform1();
  const auto rows = recommend_rows(spec, 100, dedicated_loads(4),
                                   BalanceStrategy::kUniform);
  EXPECT_EQ(rows, (std::vector<std::size_t>{25, 25, 25, 25}));
}

TEST(DecompositionAdvisor, MeanCapacityFavorsFastHosts) {
  const auto spec = cluster::platform1();  // sparc2 x2, sparc5, sparc10
  const auto rows = recommend_rows(spec, 400, dedicated_loads(4),
                                   BalanceStrategy::kMeanCapacity);
  EXPECT_EQ(std::accumulate(rows.begin(), rows.end(), std::size_t{0}), 400u);
  // sparc10 (4x the speed of sparc2) gets ~4x the rows.
  EXPECT_GT(rows[3], 3 * rows[0]);
  // sparc5 sits between.
  EXPECT_GT(rows[2], rows[0]);
  EXPECT_LT(rows[2], rows[3]);
}

TEST(DecompositionAdvisor, LoadScalesCapacity) {
  const auto spec = cluster::dedicated_platform(2);
  std::vector<stoch::StochasticValue> loads{stoch::StochasticValue(1.0),
                                            stoch::StochasticValue(0.5)};
  const auto rows =
      recommend_rows(spec, 300, loads, BalanceStrategy::kMeanCapacity);
  // Identical machines, host 1 at half availability -> ~half the rows.
  EXPECT_NEAR(static_cast<double>(rows[0]) / static_cast<double>(rows[1]),
              2.0, 0.1);
}

TEST(DecompositionAdvisor, ConservativePenalizesSwingyHosts) {
  const auto spec = cluster::dedicated_platform(2);
  // Same mean load, host 1 swings wildly.
  std::vector<stoch::StochasticValue> loads{
      stoch::StochasticValue(0.6, 0.05), stoch::StochasticValue(0.6, 0.5)};
  const auto mean_rows =
      recommend_rows(spec, 300, loads, BalanceStrategy::kMeanCapacity);
  const auto cons_rows =
      recommend_rows(spec, 300, loads, BalanceStrategy::kConservative);
  EXPECT_EQ(mean_rows[0], mean_rows[1]);   // means are equal
  EXPECT_GT(cons_rows[0], cons_rows[1]);   // pessimism shifts work to host 0
}

TEST(DecompositionAdvisor, ImbalanceMetricDetectsSkew) {
  const auto spec = cluster::platform1();
  const auto loads = dedicated_loads(4);
  const auto uniform =
      recommend_rows(spec, 400, loads, BalanceStrategy::kUniform);
  const auto balanced =
      recommend_rows(spec, 400, loads, BalanceStrategy::kMeanCapacity);
  const double imb_uniform = imbalance(spec, 400, uniform, loads);
  const double imb_balanced = imbalance(spec, 400, balanced, loads);
  EXPECT_GT(imb_uniform, 1.5);  // slow sparc2 dominates uniform strips
  EXPECT_LT(imb_balanced, 1.1);
  EXPECT_GE(imb_balanced, 1.0);
}

TEST(DecompositionAdvisor, BalancedDecompositionSpeedsUpRealRun) {
  const auto spec = cluster::platform1();
  sor::SorConfig cfg;
  cfg.n = 400;
  cfg.iterations = 10;
  cfg.real_numerics = false;

  sim::Engine e1;
  cluster::Platform p1(e1, spec, 11);
  const double t_uniform = sor::run_distributed_sor(e1, p1, cfg).total_time;

  // Speed-only balancing (dedicated loads assumed) already helps...
  cfg.rows_per_rank = recommend_rows(spec, cfg.n, dedicated_loads(4),
                                     BalanceStrategy::kMeanCapacity);
  sim::Engine e2;
  cluster::Platform p2(e2, spec, 11);
  const double t_speed = sor::run_distributed_sor(e2, p2, cfg).total_time;
  EXPECT_LT(t_speed, 0.7 * t_uniform);

  // ...and folding the measured stochastic loads in (the paper's
  // capacity = load/BM) helps much more: host 0 sits at 0.48.
  const std::vector<stoch::StochasticValue> measured{
      stoch::StochasticValue(0.48, 0.05), stoch::StochasticValue(0.92, 0.03),
      stoch::StochasticValue(0.92, 0.03), stoch::StochasticValue(0.92, 0.03)};
  cfg.rows_per_rank =
      recommend_rows(spec, cfg.n, measured, BalanceStrategy::kMeanCapacity);
  sim::Engine e3;
  cluster::Platform p3(e3, spec, 11);
  const double t_load_aware = sor::run_distributed_sor(e3, p3, cfg).total_time;
  EXPECT_LT(t_load_aware, 0.55 * t_uniform);
  EXPECT_LT(t_load_aware, t_speed);
}

TEST(DecompositionAdvisor, ValidationErrors) {
  const auto spec = cluster::dedicated_platform(2);
  EXPECT_THROW((void)recommend_rows(spec, 1, dedicated_loads(2),
                                    BalanceStrategy::kUniform),
               support::Error);
  EXPECT_THROW((void)recommend_rows(spec, 100, dedicated_loads(3),
                                    BalanceStrategy::kUniform),
               support::Error);
}

}  // namespace
}  // namespace sspred::predict
