// Tests for the blocked trial-major Monte-Carlo engine (model/ir.hpp),
// the ziggurat batch sampler behind it (support/rng.hpp), and the IR
// optimization pipeline (model/compile.hpp).
//
// The blocked RNG stream (ir::SampleOrder::kBlocked) is a versioned
// determinism contract. Rather than freezing literal doubles, the golden
// tests here REPLAY the documented draw order by hand — per block: every
// live parameter slot in ascending slot-id order, then the node-major
// walk (stochastic constants per occurrence, unrelated iterate
// repetitions redrawing their body slots per repetition) — and require
// sample_into() to match bit for bit. Any change to the block size, the
// ziggurat, or the draw order fails these tests and must bump the
// contract. The scalar-compatible order is pinned by compile_test.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <iterator>
#include <string>
#include <vector>

#include "model/compile.hpp"
#include "model/expr.hpp"
#include "model/ir.hpp"
#include "stoch/stochastic_value.hpp"
#include "support/rng.hpp"

namespace sspred::model {
namespace {

using stoch::Dependence;
using stoch::ExtremePolicy;
using stoch::StochasticValue;

// ---------------------------------------------------------------------------
// Ziggurat sampler.

TEST(ZigguratSampler, StreamIsDeterministicPerSeed) {
  support::Rng a(2026), b(2026), c(2027);
  std::vector<double> xa(257), xb(257), xc(257);
  a.normal_fill(xa);
  b.normal_fill(xb);
  c.normal_fill(xc);
  EXPECT_EQ(xa, xb);
  EXPECT_NE(xa, xc);
}

TEST(ZigguratSampler, FillAppliesMeanAndSdAffinely) {
  support::Rng a(7), b(7);
  std::vector<double> std_draws(64), scaled(64);
  a.normal_fill(std_draws);
  b.normal_fill(scaled, 5.0, 0.25);
  for (std::size_t i = 0; i < std_draws.size(); ++i) {
    EXPECT_DOUBLE_EQ(scaled[i], 5.0 + 0.25 * std_draws[i]) << "draw " << i;
  }
}

TEST(ZigguratSampler, MomentsAndCoverageMatchTheStandardNormal) {
  support::Rng rng(123456);
  constexpr std::size_t kN = 200'000;
  std::vector<double> xs(kN);
  rng.normal_fill(xs);
  double sum = 0.0, sum_sq = 0.0;
  std::size_t within_1 = 0, within_2 = 0, tail = 0;
  for (const double x : xs) {
    sum += x;
    sum_sq += x * x;
    within_1 += std::abs(x) <= 1.0 ? 1 : 0;
    within_2 += std::abs(x) <= 2.0 ? 1 : 0;
    // Beyond the ziggurat's base strip boundary: exercises the tail branch.
    tail += std::abs(x) > 3.442619855899 ? 1 : 0;
  }
  const double n = static_cast<double>(kN);
  const double mean = sum / n;
  const double sd = std::sqrt(sum_sq / n - mean * mean);
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(sd, 1.0, 0.01);
  EXPECT_NEAR(static_cast<double>(within_1) / n, 0.682689, 0.005);
  EXPECT_NEAR(static_cast<double>(within_2) / n, 0.954500, 0.003);
  // P(|Z| > 3.4426) ~ 5.75e-4, so ~115 of 200k; the branch must be live.
  EXPECT_GT(tail, 0u);
  EXPECT_LT(tail, 400u);
}

TEST(ZigguratSampler, DoesNotDisturbThePolarSpare) {
  // normal_ziggurat() consumes raw 64-bit words directly and never
  // touches normal()'s cached spare: polar draws generate values in
  // pairs, and the second of a pair must survive ziggurat draws spliced
  // in between.
  support::Rng plain(99), mixed(99);
  const double p1 = plain.normal();
  const double p2 = plain.normal();  // served from the cached spare
  const double m1 = mixed.normal();
  (void)mixed.normal_ziggurat();
  std::vector<double> z(9);
  mixed.normal_fill(z);
  const double m2 = mixed.normal();  // must still be the cached spare
  EXPECT_DOUBLE_EQ(p1, m1);
  EXPECT_DOUBLE_EQ(p2, m2);
}

// ---------------------------------------------------------------------------
// Blocked-engine golden replay: the documented kBlocked draw order,
// executed by hand against a second identically-seeded Rng.

TEST(McEngineBlocked, StreamMatchesDocumentedDrawOrderAcrossBlocks) {
  const auto expr =
      add(param("x"), constant(StochasticValue(2.0, 0.5)));
  const ir::Program prog = compile(*expr);
  ir::SlotEnvironment env = prog.make_environment();
  env.bind(prog.slot("x"), StochasticValue(0.8, 0.2));

  // One full block plus a short remainder block.
  const std::size_t trials = ir::kBlockTrials + 7;
  std::vector<double> got(trials);
  support::Rng rng(4242);
  ir::EvalWorkspace ws;
  prog.sample_into(env, rng, got, ws);

  // Replay: per block, slot "x" first (live slot, ascending), then the
  // stochastic constant at its node occurrence. sd = halfwidth / 2.
  std::vector<double> expected(trials);
  support::Rng replay(4242);
  std::vector<double> xs(ir::kBlockTrials), cs(ir::kBlockTrials);
  std::size_t done = 0;
  while (done < trials) {
    const std::size_t lanes = std::min(ir::kBlockTrials, trials - done);
    replay.normal_fill({xs.data(), lanes}, 0.8, 0.1);
    replay.normal_fill({cs.data(), lanes}, 2.0, 0.25);
    for (std::size_t i = 0; i < lanes; ++i) {
      expected[done + i] = xs[i] + cs[i];
    }
    done += lanes;
  }
  for (std::size_t t = 0; t < trials; ++t) {
    ASSERT_DOUBLE_EQ(got[t], expected[t]) << "trial " << t;
  }
}

TEST(McEngineBlocked, UnrelatedIterateRedrawsBodySlotsPerRepetition) {
  const auto expr = iterate(param("x"), 3, Dependence::kUnrelated);
  const ir::Program prog = compile(*expr);
  ir::SlotEnvironment env = prog.make_environment();
  env.bind(prog.slot("x"), StochasticValue(1.0, 0.4));

  const std::size_t trials = 64;
  std::vector<double> got(trials);
  support::Rng rng(11);
  ir::EvalWorkspace ws;
  prog.sample_into(env, rng, got, ws);

  // Replay: the block prefill draws "x" once (the enclosing trial's
  // cached draw — unused here because every read is inside the unrelated
  // body), then each of the 3 repetitions redraws it.
  support::Rng replay(11);
  std::vector<double> prefill(trials), rep(trials), expected(trials, 0.0);
  replay.normal_fill({prefill.data(), trials}, 1.0, 0.2);
  for (int r = 0; r < 3; ++r) {
    replay.normal_fill({rep.data(), trials}, 1.0, 0.2);
    for (std::size_t t = 0; t < trials; ++t) expected[t] += rep[t];
  }
  for (std::size_t t = 0; t < trials; ++t) {
    ASSERT_DOUBLE_EQ(got[t], expected[t]) << "trial " << t;
  }
}

TEST(McEngineBlocked, RelatedIterateScalesOneSharedDraw) {
  const auto expr = iterate(param("x"), 4, Dependence::kRelated);
  const ir::Program prog = compile(*expr);
  ir::SlotEnvironment env = prog.make_environment();
  env.bind(prog.slot("x"), StochasticValue(1.0, 0.4));

  const std::size_t trials = 32;
  std::vector<double> got(trials);
  support::Rng rng(17);
  ir::EvalWorkspace ws;
  prog.sample_into(env, rng, got, ws);

  support::Rng replay(17);
  std::vector<double> xs(trials);
  replay.normal_fill({xs.data(), trials}, 1.0, 0.2);
  for (std::size_t t = 0; t < trials; ++t) {
    ASSERT_DOUBLE_EQ(got[t], 4.0 * xs[t]) << "trial " << t;
  }
}

TEST(McEngineBlocked, SameSeedSameResultAcrossWorkspaces) {
  const auto expr = add(mul(param("a"), param("b")),
                        constant(StochasticValue(3.0, 0.6)));
  const ir::Program prog = compile(*expr);
  ir::SlotEnvironment env = prog.make_environment();
  env.bind(prog.slot("a"), StochasticValue(0.9, 0.2));
  env.bind(prog.slot("b"), StochasticValue(1.1, 0.1));

  support::Rng r1(5), r2(5), r3(6);
  ir::EvalWorkspace w1, w2, w3;
  const auto a = prog.sample_trials(env, r1, 5000, w1);
  const auto b = prog.sample_trials(env, r2, 5000, w2);
  const auto c = prog.sample_trials(env, r3, 5000, w3);
  EXPECT_DOUBLE_EQ(a.mean(), b.mean());
  EXPECT_DOUBLE_EQ(a.halfwidth(), b.halfwidth());
  EXPECT_NE(a.mean(), c.mean());
}

TEST(McEngineBlocked, AgreesWithScalarOrderStatistically) {
  // Same distributions, different stream order: the two estimators must
  // agree on the underlying quantity, not bit for bit.
  const auto phase = vmax({mul(param("a"), constant(StochasticValue(2.0))),
                           mul(param("b"), constant(StochasticValue(1.5)))});
  const auto expr = iterate(phase, 10, Dependence::kUnrelated);
  const ir::Program prog = compile(*expr);
  ir::SlotEnvironment env = prog.make_environment();
  env.bind(prog.slot("a"), StochasticValue(1.0, 0.3));
  env.bind(prog.slot("b"), StochasticValue(1.2, 0.4));

  support::Rng rb(303), rs(404);
  const auto blocked = prog.sample_trials(env, rb, 40'000);
  const auto scalar =
      prog.sample_trials(env, rs, 40'000, ir::SampleOrder::kScalarCompat);
  EXPECT_NEAR(blocked.mean(), scalar.mean(), 0.02 * scalar.mean());
  EXPECT_NEAR(blocked.halfwidth(), scalar.halfwidth(),
              0.10 * scalar.halfwidth());
}

// ---------------------------------------------------------------------------
// Optimizer passes.

/// Random expression DAGs for the optimizer's differential tests: nested
/// sums/products/quotients/extremes/iterates over a small parameter pool,
/// with occasional subtree reuse (shared nodes lower to kRef).
ExprPtr random_expr(support::Rng& rng, int depth, std::vector<ExprPtr>& pool) {
  static const std::string kParams[] = {"a", "b", "c"};
  if (depth <= 0 || rng.uniform() < 0.25) {
    switch (rng.uniform_int(4)) {
      case 0:
        return constant(StochasticValue(rng.uniform(0.5, 3.0)));
      case 1:
        return constant(
            StochasticValue(rng.uniform(1.0, 3.0), rng.uniform(0.0, 0.4)));
      case 2:
        if (!pool.empty()) return pool[rng.uniform_int(pool.size())];
        [[fallthrough]];
      default:
        return param(kParams[rng.uniform_int(3)]);
    }
  }
  const auto child = [&] { return random_expr(rng, depth - 1, pool); };
  const auto children = [&](std::size_t lo) {
    std::vector<ExprPtr> out;
    const std::size_t k = lo + rng.uniform_int(3);
    out.reserve(k);
    for (std::size_t i = 0; i < k; ++i) out.push_back(child());
    return out;
  };
  const Dependence dep =
      rng.uniform() < 0.5 ? Dependence::kUnrelated : Dependence::kRelated;
  static const ExtremePolicy kPolicies[] = {ExtremePolicy::kLargestMean,
                                            ExtremePolicy::kLargestUpper,
                                            ExtremePolicy::kClark};
  ExprPtr e;
  switch (rng.uniform_int(6)) {
    case 0:
      e = sum(children(2), dep);
      break;
    case 1:
      e = prod(children(2), dep);
      break;
    case 2:
      // Denominator mean >= 2 with sd <= 0.1 keeps sampled denominators
      // 20+ sigma from zero: deterministic seeds, deterministic safety.
      e = quotient(child(),
                   constant(StochasticValue(rng.uniform(2.0, 4.0),
                                            rng.uniform(0.0, 0.2))),
                   dep);
      break;
    case 3:
      e = vmax(children(2), kPolicies[rng.uniform_int(3)]);
      break;
    case 4:
      e = vmin(children(2), kPolicies[rng.uniform_int(3)]);
      break;
    default:
      e = iterate(child(), 1 + rng.uniform_int(4), dep);
      break;
  }
  pool.push_back(e);
  return e;
}

void expect_sv_eq(const StochasticValue& a, const StochasticValue& b,
                  const std::string& what) {
  EXPECT_DOUBLE_EQ(a.mean(), b.mean()) << what;
  EXPECT_DOUBLE_EQ(a.halfwidth(), b.halfwidth()) << what;
}

TEST(OptimizerPasses, EveryPassIsBitExactInAllModesOnRandomDags) {
  constexpr std::size_t kDags = 25;
  constexpr std::size_t kTrials = 300;
  const OptimizeOptions kVariants[] = {
      {.fold_constants = true, .fuse_groups = false, .eliminate_dead = false},
      {.fold_constants = false, .fuse_groups = true, .eliminate_dead = false},
      {.fold_constants = false, .fuse_groups = false, .eliminate_dead = true},
      {},  // the full default pipeline
  };
  for (std::size_t d = 0; d < kDags; ++d) {
    support::Rng gen(9000 + d);
    std::vector<ExprPtr> pool;
    const ExprPtr expr = random_expr(gen, 4, pool);
    const ir::Program base = compile_unoptimized(*expr);
    ir::SlotEnvironment env = base.make_environment();
    for (std::uint32_t s = 0; s < base.slot_count(); ++s) {
      env.bind(s, StochasticValue(gen.uniform(0.6, 1.4), gen.uniform(0.0, 0.3)));
    }
    for (std::size_t v = 0; v < std::size(kVariants); ++v) {
      OptimizeStats stats;
      const ir::Program opt = optimize(base, kVariants[v], &stats);
      const std::string what =
          "dag " + std::to_string(d) + " variant " + std::to_string(v);
      EXPECT_LE(opt.node_count(), base.node_count()) << what;
      // The slot table is preserved verbatim, so `env` drives both.
      ASSERT_EQ(opt.slot_count(), base.slot_count()) << what;
      expect_sv_eq(opt.evaluate(env), base.evaluate(env), what + " stochastic");
      EXPECT_DOUBLE_EQ(opt.evaluate_point(env), base.evaluate_point(env))
          << what << " point";
      // Bit-exact per seed in BOTH sample orders: no pass may add, drop,
      // or reorder a draw event.
      {
        support::Rng ra(100 + d), rb(100 + d);
        expect_sv_eq(opt.sample_trials(env, ra, kTrials),
                     base.sample_trials(env, rb, kTrials), what + " blocked");
      }
      {
        support::Rng ra(200 + d), rb(200 + d);
        expect_sv_eq(
            opt.sample_trials(env, ra, kTrials, ir::SampleOrder::kScalarCompat),
            base.sample_trials(env, rb, kTrials,
                               ir::SampleOrder::kScalarCompat),
            what + " scalar");
      }
    }
  }
}

TEST(OptimizerPasses, PurePointModelFoldsToOneLiteralAndSkipsSampling) {
  // (2 + 0.5) summed over 4 unrelated iterations: every value is a point,
  // so the whole model folds to the literal 10 (dyadic values keep the
  // three modes' arithmetic — including sample-mode repeated addition —
  // exactly equal, which the fold guard requires).
  const auto expr = iterate(add(constant(StochasticValue(2.0)),
                                constant(StochasticValue(0.5))),
                            4, Dependence::kUnrelated);
  const ir::Program base = compile_unoptimized(*expr);
  OptimizeStats stats;
  const ir::Program opt = optimize(base, {}, &stats);
  ASSERT_EQ(opt.node_count(), 1u);
  EXPECT_EQ(opt.node(0).op, ir::OpCode::kConst);
  EXPECT_TRUE(opt.constant(0).is_point());
  EXPECT_DOUBLE_EQ(opt.constant(0).mean(), 10.0);
  EXPECT_GE(stats.folded, 2u);
  EXPECT_EQ(stats.removed_nodes, base.node_count() - 1);

  // Sampling a pure-point program is a no-op on the RNG: the fast path
  // returns the literal without drawing.
  ir::SlotEnvironment env = opt.make_environment();
  support::Rng rng(77), untouched(77);
  const auto mc = opt.sample_trials(env, rng, 10'000);
  EXPECT_TRUE(mc.is_point());
  EXPECT_DOUBLE_EQ(mc.mean(), 10.0);
  EXPECT_EQ(rng(), untouched());
}

TEST(OptimizerPasses, FusesMaxTreesAndHeadPositionSumChains) {
  const auto a = param("a"), b = param("b"), c = param("c"), d = param("d"),
             e = param("e");
  {
    // Balanced max-of-max tree, one policy: both inner nodes splice into
    // the root (any operand position), leaving one wide 5-ary max.
    const auto tree = vmax({vmax({a, b}), vmax({c, d}), e});
    OptimizeStats stats;
    const ir::Program opt =
        optimize(compile_unoptimized(*tree), {}, &stats);
    EXPECT_EQ(stats.fused, 2u);
    EXPECT_EQ(stats.removed_nodes, 2u);
    const ir::Node& root = opt.node(opt.node_count() - 1);
    EXPECT_EQ(root.op, ir::OpCode::kMax);
    EXPECT_EQ(root.count, 5u);
  }
  {
    // Sum chains fuse only at the head (sequential folds are bit-exact
    // under flattening only there): add(add(a,b),c) flattens...
    const auto head = add(add(a, b), c);
    OptimizeStats stats;
    const ir::Program opt =
        optimize(compile_unoptimized(*head), {}, &stats);
    EXPECT_EQ(stats.fused, 1u);
    EXPECT_EQ(opt.node(opt.node_count() - 1).count, 3u);
  }
  {
    // ...but a tail-position nested sum stays nested.
    const auto tail = sum({a, add(b, c)});
    OptimizeStats stats;
    const ir::Program opt =
        optimize(compile_unoptimized(*tail), {}, &stats);
    EXPECT_EQ(stats.fused, 0u);
  }
  {
    // Clark's fold is not associative: no fusion under kClark.
    const auto clark = vmax({vmax({a, b}, ExtremePolicy::kClark), c},
                            ExtremePolicy::kClark);
    OptimizeStats stats;
    const ir::Program opt =
        optimize(compile_unoptimized(*clark), {}, &stats);
    EXPECT_EQ(stats.fused, 0u);
  }
}

TEST(OptimizerPasses, ReportsDeadSlotsAndBlockedEngineNeverDrawsThem) {
  // Seed the slot table from a base model over {x, y}, then compile an
  // expression that only reads x: slot y exists but is dead.
  const auto base_expr = add(param("x"), param("y"));
  const ir::Program base = compile_unoptimized(*base_expr);
  const auto expr = mul(param("x"), constant(StochasticValue(2.0)));
  OptimizeStats stats;
  const ir::Program prog =
      optimize(compile_unoptimized(*expr, base), {}, &stats);
  ASSERT_EQ(prog.slot_count(), 2u);
  EXPECT_EQ(stats.dead_slots, 1u);
  ASSERT_EQ(prog.live_slots().size(), 1u);
  EXPECT_EQ(prog.live_slots()[0], prog.slot("x"));

  // Both slots bound stochastic; the replay draws ONLY x. If the engine
  // drew for dead slot y the streams would diverge.
  ir::SlotEnvironment env = prog.make_environment();
  env.bind(prog.slot("x"), StochasticValue(1.0, 0.4));
  env.bind(prog.slot("y"), StochasticValue(5.0, 2.0));
  const std::size_t trials = 16;
  std::vector<double> got(trials);
  support::Rng rng(33);
  ir::EvalWorkspace ws;
  prog.sample_into(env, rng, got, ws);

  support::Rng replay(33);
  std::vector<double> xs(trials);
  replay.normal_fill({xs.data(), trials}, 1.0, 0.2);
  for (std::size_t t = 0; t < trials; ++t) {
    ASSERT_DOUBLE_EQ(got[t], 2.0 * xs[t]) << "trial " << t;
  }
}

}  // namespace
}  // namespace sspred::model
