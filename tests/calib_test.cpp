// Tests for the calibration subsystem (src/calib/): the streaming
// accuracy ledger against batch recomputation, the Page-Hinkley and
// windowed-coverage drift detectors (deterministic, FakeClock-stamped),
// the conformal recalibrator's coverage restoration and its epoch
// transform through serve::NwsBridge, the PredictionService
// report_observation() feedback path, and a sim-engine closed loop.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <future>
#include <thread>
#include <vector>

#include "calib/drift.hpp"
#include "calib/ledger.hpp"
#include "calib/recalibrate.hpp"
#include "cluster/platform.hpp"
#include "nws/service.hpp"
#include "predict/experiment.hpp"
#include "serve/epoch.hpp"
#include "serve/service.hpp"
#include "stats/descriptive.hpp"
#include "support/clock.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace sspred::calib {
namespace {

// --------------------------------------------------------------- ledger

TEST(CalibLedger, StreamingMatchesBatchRecomputation) {
  const stoch::StochasticValue predicted(10.0, 2.0);  // sd = 1
  support::Rng rng(11);
  AccuracyLedger ledger;
  std::vector<double> observed;
  for (int i = 0; i < 400; ++i) {
    observed.push_back(rng.normal(10.0, 1.0));
    ledger.record("m", predicted, observed.back());
  }

  std::uint64_t inside = 0;
  double crps_sum = 0.0, z_sum = 0.0;
  for (const double y : observed) {
    if (predicted.contains(y)) ++inside;
    crps_sum += normal_crps(predicted.mean(), predicted.sd(), y);
    z_sum += (y - predicted.mean()) / predicted.sd();
  }
  const double n = double(observed.size());

  const auto snap = ledger.snapshot("m");
  EXPECT_EQ(snap.count, observed.size());
  EXPECT_EQ(snap.inside, inside);
  EXPECT_DOUBLE_EQ(snap.coverage, double(inside) / n);
  EXPECT_DOUBLE_EQ(snap.sharpness, predicted.halfwidth());
  EXPECT_NEAR(snap.mean_crps, crps_sum / n, 1e-12);
  EXPECT_NEAR(snap.z_mean, z_sum / n, 1e-9);

  double z_m2 = 0.0;
  for (const double y : observed) {
    const double z = (y - predicted.mean()) / predicted.sd();
    z_m2 += (z - snap.z_mean) * (z - snap.z_mean);
  }
  EXPECT_NEAR(snap.z_sd, std::sqrt(z_m2 / (n - 1.0)), 1e-9);

  // Calibrated normal residuals: |z| nominal quantile sits near 2.
  EXPECT_NEAR(snap.abs_z_quantile, 2.0, 0.3);
  // Overall snapshot (single model) agrees.
  EXPECT_EQ(ledger.snapshot().count, snap.count);
  EXPECT_DOUBLE_EQ(ledger.snapshot().coverage, snap.coverage);
}

TEST(CalibLedger, RollingWindowTracksRecentCoverageOnly) {
  LedgerOptions options;
  options.coverage_window = 4;
  AccuracyLedger ledger(options);
  const stoch::StochasticValue predicted(10.0, 1.0);
  for (int i = 0; i < 4; ++i) ledger.record("m", predicted, 10.0);  // hits
  for (int i = 0; i < 4; ++i) ledger.record("m", predicted, 50.0);  // misses
  const auto snap = ledger.snapshot("m");
  EXPECT_EQ(snap.count, 8u);
  EXPECT_DOUBLE_EQ(snap.coverage, 0.5);          // cumulative
  EXPECT_DOUBLE_EQ(snap.rolling_coverage, 0.0);  // window holds the misses
  EXPECT_EQ(snap.rolling_count, 4u);
}

TEST(CalibLedger, PointPredictionsCountButCarryNoResiduals) {
  AccuracyLedger ledger;
  ledger.record("m", stoch::StochasticValue::point(5.0), 5.0);  // exact hit
  ledger.record("m", stoch::StochasticValue::point(5.0), 6.0);  // miss
  const auto snap = ledger.snapshot("m");
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.point_predictions, 2u);
  EXPECT_EQ(snap.inside, 1u);
  EXPECT_DOUBLE_EQ(snap.mean_crps, 0.0);
  EXPECT_DOUBLE_EQ(snap.z_sd, 0.0);
}

TEST(CalibLedger, PerModelSnapshotsAreIndependent) {
  AccuracyLedger ledger;
  const stoch::StochasticValue predicted(10.0, 1.0);
  ledger.record("good", predicted, 10.0);
  ledger.record("bad", predicted, 99.0);
  EXPECT_DOUBLE_EQ(ledger.snapshot("good").coverage, 1.0);
  EXPECT_DOUBLE_EQ(ledger.snapshot("bad").coverage, 0.0);
  EXPECT_DOUBLE_EQ(ledger.snapshot().coverage, 0.5);
  const auto ids = ledger.model_ids();
  EXPECT_EQ(ids.size(), 2u);
  EXPECT_THROW((void)ledger.snapshot("never-seen"), support::Error);
}

TEST(CalibLedger, NormalCrpsAndPinballClosedForms) {
  // CRPS of N(0,1) at y=0: 2*phi(0) - 1/sqrt(pi) = 0.233695...
  EXPECT_NEAR(normal_crps(0.0, 1.0, 0.0), 0.2336949, 1e-6);
  // CRPS scales with sd and is translation-invariant.
  EXPECT_NEAR(normal_crps(5.0, 2.0, 5.0), 2.0 * 0.2336949, 1e-6);
  // Far-out observation: CRPS approaches |y - mean| - sd/sqrt(pi).
  EXPECT_NEAR(normal_crps(0.0, 1.0, 50.0), 50.0 - 1.0 / std::sqrt(M_PI),
              1e-3);
  // Pinball loss at tau: tau*(y-q) above, (1-tau)*(q-y) below.
  EXPECT_DOUBLE_EQ(pinball_loss(1.0, 0.9, 2.0), 0.9);
  EXPECT_DOUBLE_EQ(pinball_loss(1.0, 0.9, 0.0), 0.1);
  EXPECT_DOUBLE_EQ(pinball_loss(1.0, 0.9, 1.0), 0.0);
}

// ---------------------------------------------------------------- drift

TEST(CalibLedger, RollingCrpsScoresEveryObservationIncludingPoints) {
  LedgerOptions options;
  options.coverage_window = 4;
  AccuracyLedger ledger(options);
  // Two point predictions (|error| 1 and 3) and two normal ones.
  ledger.record("m", stoch::StochasticValue(10.0, 0.0), 11.0);
  ledger.record("m", stoch::StochasticValue(10.0, 0.0), 13.0);
  ledger.record("m", stoch::StochasticValue(10.0, 2.0), 10.0);
  ledger.record("m", stoch::StochasticValue(10.0, 2.0), 12.0);
  auto s = ledger.snapshot("m");
  EXPECT_EQ(s.rolling_crps_count, 4u);
  const double expected =
      (1.0 + 3.0 + normal_crps(10.0, 1.0, 10.0) + normal_crps(10.0, 1.0, 12.0)) /
      4.0;
  EXPECT_NEAR(s.rolling_crps, expected, 1e-12);
  // The cumulative mean_crps still excludes points (no residual defined).
  EXPECT_NEAR(s.mean_crps,
              (normal_crps(10.0, 1.0, 10.0) + normal_crps(10.0, 1.0, 12.0)) /
                  2.0,
              1e-12);

  // The ring is bounded: a fifth observation evicts the first.
  ledger.record("m", stoch::StochasticValue(10.0, 0.0), 10.0);
  s = ledger.snapshot("m");
  EXPECT_EQ(s.rolling_crps_count, 4u);
  const double evicted =
      (3.0 + normal_crps(10.0, 1.0, 10.0) + normal_crps(10.0, 1.0, 12.0) +
       0.0) /
      4.0;
  EXPECT_NEAR(s.rolling_crps, evicted, 1e-12);
}

TEST(CalibLedger, HasProbesWithoutThrowing) {
  AccuracyLedger ledger;
  EXPECT_FALSE(ledger.has("m"));
  EXPECT_THROW((void)ledger.snapshot("m"), support::Error);
  ledger.record("m", stoch::StochasticValue(10.0, 2.0), 10.0);
  EXPECT_TRUE(ledger.has("m"));
  EXPECT_FALSE(ledger.has("other"));
}

TEST(CalibLedger, P2QuantileStaysPinnedOnConstantStreams) {
  // A constant observation stream yields a constant |z|; the P² sketch
  // must report exactly that value, not drift or divide by zero.
  AccuracyLedger ledger;
  for (int i = 0; i < 200; ++i) {
    // z = (12 - 10) / 1 = 2 every time.
    ledger.record("m", stoch::StochasticValue(10.0, 2.0), 12.0);
  }
  const auto s = ledger.snapshot("m");
  EXPECT_NEAR(s.abs_z_quantile, 2.0, 1e-9);
  EXPECT_NEAR(s.z_mean, 2.0, 1e-12);
  EXPECT_NEAR(s.z_sd, 0.0, 1e-12);
  EXPECT_TRUE(std::isfinite(s.rolling_crps));
}

TEST(CalibDrift, PageHinkleyDetectsUpwardShift) {
  PageHinkley ph;  // delta 0.05, lambda 12, min_samples 16
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(ph.update(0.0));
  int fired_at = -1;
  for (int i = 0; i < 20; ++i) {
    if (ph.update(5.0)) {
      fired_at = i;
      break;
    }
  }
  ASSERT_GE(fired_at, 0);
  EXPECT_LE(fired_at, 5);  // ~each shifted sample adds ~5 to the statistic
  EXPECT_TRUE(ph.triggered());
  EXPECT_FALSE(ph.update(5.0));  // latched: fires exactly once
  ph.reset();
  EXPECT_FALSE(ph.triggered());
  EXPECT_EQ(ph.samples(), 0u);
}

TEST(CalibDrift, PageHinkleyDetectsDownwardShift) {
  PageHinkley ph;
  for (int i = 0; i < 50; ++i) ph.update(0.0);
  int fired_at = -1;
  for (int i = 0; i < 20; ++i) {
    if (ph.update(-5.0)) {
      fired_at = i;
      break;
    }
  }
  ASSERT_GE(fired_at, 0);
  EXPECT_LE(fired_at, 5);
}

TEST(CalibDrift, PageHinkleyQuietOnStationaryNoise) {
  PageHinkleyOptions options;
  options.delta = 0.1;
  options.lambda = 25.0;
  PageHinkley ph(options);
  support::Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_FALSE(ph.update(rng.normal(0.0, 1.0)));
  }
  EXPECT_FALSE(ph.triggered());
}

TEST(CalibDrift, PageHinkleyRespectsMinSamples) {
  PageHinkleyOptions options;
  options.min_samples = 10;
  options.lambda = 1.0;
  PageHinkley ph(options);
  // A blatant shift from the start must still wait out min_samples.
  for (int i = 0; i < 9; ++i) EXPECT_FALSE(ph.update(double(i % 2) * 10.0));
  bool fired = false;
  for (int i = 0; i < 10 && !fired; ++i) fired = ph.update(10.0);
  EXPECT_TRUE(fired);
}

TEST(CalibDrift, WindowedCoverageFiresExactlyWhenWindowDipsBelowFloor) {
  WindowedCoverageOptions options;
  options.window = 8;
  options.min_coverage = 0.80;
  WindowedCoverageDetector d(options);
  for (int i = 0; i < 8; ++i) EXPECT_FALSE(d.update(true));
  EXPECT_DOUBLE_EQ(d.rolling_coverage(), 1.0);
  EXPECT_FALSE(d.update(false));  // 7/8 = 0.875 >= 0.80
  EXPECT_TRUE(d.update(false));   // 6/8 = 0.75 < 0.80
  EXPECT_TRUE(d.triggered());
  EXPECT_FALSE(d.update(false));  // latched
  d.reset();
  EXPECT_FALSE(d.triggered());
  EXPECT_DOUBLE_EQ(d.rolling_coverage(), 0.0);
}

TEST(CalibDrift, WindowedCoverageWaitsForFullWindow) {
  WindowedCoverageOptions options;
  options.window = 8;
  options.min_coverage = 0.80;
  WindowedCoverageDetector d(options);
  // All misses, but the window never fills: no alarm yet.
  for (int i = 0; i < 7; ++i) EXPECT_FALSE(d.update(false));
  EXPECT_FALSE(d.triggered());
  EXPECT_TRUE(d.update(false));  // eighth observation completes the window
}

TEST(CalibDrift, DriftMonitorStampsAlarmsWithInjectedClock) {
  auto clock = std::make_shared<support::FakeClock>(100.0);
  DriftMonitorOptions options;
  options.coverage.window = 4;
  options.coverage.min_coverage = 0.9;
  DriftMonitor monitor(options, clock);

  // Stationary residuals, all inside: no alarms.
  for (int i = 0; i < 30; ++i) {
    EXPECT_FALSE(monitor.update("m", 0.0, true));
    clock->advance(1.0);
  }
  EXPECT_FALSE(monitor.triggered("m"));

  // Shift the residual mean; Page-Hinkley fires at a clock-stamped time.
  bool fired = false;
  for (int i = 0; i < 20 && !fired; ++i) {
    fired = monitor.update("m", 6.0, true);
    clock->advance(1.0);
  }
  ASSERT_TRUE(fired);
  EXPECT_TRUE(monitor.triggered("m"));
  auto alarms = monitor.alarms();
  ASSERT_EQ(alarms.size(), 1u);
  EXPECT_EQ(alarms[0].model_id, "m");
  EXPECT_EQ(alarms[0].detector, "page_hinkley");
  EXPECT_GT(alarms[0].observation, 30u);
  EXPECT_GE(alarms[0].time, 130.0);  // after the 30 stationary ticks
  EXPECT_LT(alarms[0].time, 150.0);

  // Determinism: the same drive on a fresh monitor yields the same alarm.
  auto clock2 = std::make_shared<support::FakeClock>(100.0);
  DriftMonitor monitor2(options, clock2);
  for (int i = 0; i < 30; ++i) {
    monitor2.update("m", 0.0, true);
    clock2->advance(1.0);
  }
  bool fired2 = false;
  for (int i = 0; i < 20 && !fired2; ++i) {
    fired2 = monitor2.update("m", 6.0, true);
    clock2->advance(1.0);
  }
  ASSERT_EQ(monitor2.alarms().size(), 1u);
  EXPECT_DOUBLE_EQ(monitor2.alarms()[0].time, alarms[0].time);
  EXPECT_EQ(monitor2.alarms()[0].observation, alarms[0].observation);
}

TEST(CalibDrift, DriftMonitorCoverageDetectorAndPerModelIsolation) {
  auto clock = std::make_shared<support::FakeClock>(0.0);
  DriftMonitorOptions options;
  options.coverage.window = 8;
  options.coverage.min_coverage = 0.80;
  DriftMonitor monitor(options, clock);
  // Model "sick" misses every interval; "fine" always hits.
  bool fired = false;
  for (int i = 0; i < 8; ++i) {
    fired = monitor.update("sick", 0.0, false);
    monitor.update("fine", 0.0, true);
  }
  EXPECT_TRUE(fired);
  EXPECT_TRUE(monitor.triggered("sick"));
  EXPECT_FALSE(monitor.triggered("fine"));
  ASSERT_EQ(monitor.alarms().size(), 1u);
  EXPECT_EQ(monitor.alarms()[0].detector, "coverage");
  EXPECT_EQ(monitor.alarms()[0].observation, 8u);

  // reset() re-arms the detectors but keeps the alarm history.
  monitor.reset("sick");
  EXPECT_FALSE(monitor.triggered("sick"));
  EXPECT_EQ(monitor.alarms().size(), 1u);
}

// ---------------------------------------------------------- recalibrate

// Regression: a zero or near-zero predicted half-width must not poison
// the score window. Dividing by a denormal half-width used to inject an
// astronomically large (or inf) normalized score that pinned the
// conformal quantile to max_scale for a full window.
TEST(CalibRecalibrate, DegenerateHalfwidthsCarryNoScore) {
  RecalibratorOptions options;
  options.min_samples = 4;
  ConformalRecalibrator recal(options);
  // True points were always ignored...
  recal.record("m", stoch::StochasticValue(10.0, 0.0), 15.0);
  // ...and near-zero half-widths (below the relative floor) now are too,
  // instead of scoring |err| / 1e-300.
  recal.record("m", stoch::StochasticValue(10.0, 1e-300), 15.0);
  recal.record("m", stoch::StochasticValue(10.0, 1e-12), 15.0);
  EXPECT_EQ(recal.count("m"), 0u);
  EXPECT_DOUBLE_EQ(recal.scale("m"), 1.0);

  // Healthy intervals still score; the degenerate ones never entered the
  // window, so the scale reflects only real residuals.
  for (int i = 0; i < 8; ++i) {
    recal.record("m", stoch::StochasticValue(10.0, 2.0), 11.0);
  }
  EXPECT_EQ(recal.count("m"), 8u);
  EXPECT_GT(recal.scale("m"), 0.0);
  EXPECT_LE(recal.scale("m"), options.max_scale);
  EXPECT_TRUE(std::isfinite(recal.scale("m")));
}

TEST(CalibRecalibrate, ScaleStaysAtOneUntilMinSamples) {
  RecalibratorOptions options;
  options.min_samples = 10;
  ConformalRecalibrator recal(options);
  const stoch::StochasticValue predicted(10.0, 2.0);
  for (int i = 0; i < 9; ++i) {
    recal.record("m", predicted, 10.0 + double(i % 3) * 3.0);
    EXPECT_DOUBLE_EQ(recal.scale("m"), 1.0);
  }
  recal.record("m", predicted, 11.0);
  EXPECT_EQ(recal.count("m"), 10u);
  EXPECT_NE(recal.scale("m"), 1.0);
  // Unknown models keep the identity scale.
  EXPECT_DOUBLE_EQ(recal.scale("other"), 1.0);
}

TEST(CalibRecalibrate, RestoresCoverageWhenIntervalsAreTooNarrow) {
  // The model claims sd=1 but the truth has sd=3: raw ±2sd intervals
  // cover ~50%. The conformal scale must re-attain ~nominal coverage.
  const stoch::StochasticValue predicted(20.0, 2.0);
  support::Rng rng(23);
  ConformalRecalibrator recal;
  std::size_t raw_hits = 0, cal_hits = 0, scored = 0;
  for (int i = 0; i < 4000; ++i) {
    const double y = rng.normal(20.0, 3.0);
    const auto widened = recal.apply("m", predicted);
    if (i >= 200) {  // skip the warmup where scale is still adapting
      ++scored;
      if (predicted.contains(y)) ++raw_hits;
      if (widened.contains(y)) ++cal_hits;
    }
    recal.record("m", predicted, y);
  }
  const double raw = double(raw_hits) / double(scored);
  const double cal = double(cal_hits) / double(scored);
  EXPECT_LT(raw, 0.60);
  EXPECT_GT(cal, 0.92);
  EXPECT_LT(cal, 0.99);
  // The fitted scale is close to the truth's sd inflation (3x).
  EXPECT_NEAR(recal.scale("m"), 3.0, 0.6);
}

TEST(CalibRecalibrate, ApplyScalesHalfwidthOnly) {
  RecalibratorOptions options;
  options.min_samples = 4;
  ConformalRecalibrator recal(options);
  const stoch::StochasticValue predicted(10.0, 2.0);
  for (int i = 0; i < 8; ++i) recal.record("m", predicted, 16.0);  // s = 3
  const double s = recal.scale("m");
  EXPECT_NEAR(s, 3.0, 1e-9);
  const auto widened = recal.apply("m", predicted);
  EXPECT_DOUBLE_EQ(widened.mean(), predicted.mean());
  EXPECT_DOUBLE_EQ(widened.halfwidth(), s * predicted.halfwidth());
  // Point predictions pass through apply() and are ignored by record().
  const auto point = stoch::StochasticValue::point(5.0);
  EXPECT_TRUE(recal.apply("m", point).is_point());
  recal.record("m", point, 99.0);
  EXPECT_EQ(recal.count("m"), 8u);
}

TEST(CalibRecalibrate, ScaleIsClampedBothWays) {
  RecalibratorOptions options;
  options.min_samples = 4;
  options.min_scale = 0.25;
  options.max_scale = 10.0;
  ConformalRecalibrator recal(options);
  const stoch::StochasticValue predicted(10.0, 2.0);
  // Perfect point observations: every score is 0 -> clamps to min_scale.
  for (int i = 0; i < 8; ++i) recal.record("tight", predicted, 10.0);
  EXPECT_DOUBLE_EQ(recal.scale("tight"), 0.25);
  // Wild observations: scores ~45 -> clamps to max_scale.
  for (int i = 0; i < 8; ++i) recal.record("wild", predicted, 100.0);
  EXPECT_DOUBLE_EQ(recal.scale("wild"), 10.0);
}

TEST(CalibRecalibrate, OverallScalePoolsAllModels) {
  RecalibratorOptions options;
  options.min_samples = 4;
  ConformalRecalibrator recal(options);
  const stoch::StochasticValue predicted(10.0, 2.0);
  for (int i = 0; i < 6; ++i) recal.record("a", predicted, 14.0);  // s = 2
  for (int i = 0; i < 6; ++i) recal.record("b", predicted, 18.0);  // s = 4
  EXPECT_NEAR(recal.scale("a"), 2.0, 1e-9);
  EXPECT_NEAR(recal.scale("b"), 4.0, 1e-9);
  const double pooled = recal.overall_scale();
  EXPECT_GT(pooled, 2.0);
  EXPECT_LE(pooled, 4.0);
}

TEST(CalibRecalibrate, BindingTransformWidensPublishedEpochs) {
  nws::ServiceOptions nws_options;
  nws_options.history_capacity = 64;
  nws_options.warmup = 4;
  nws::Service nws_service(nws_options);
  for (int i = 0; i < 16; ++i) {
    nws_service.observe("cpu/a", 0.8 + (i % 2 == 0 ? 0.05 : -0.05));
  }
  serve::NwsBridge bridge(nws_service, {"cpu/a"});

  const auto baseline = bridge.publish();
  const auto base = baseline->lookup("cpu/a");

  RecalibratorOptions options;
  options.min_samples = 4;
  ConformalRecalibrator recal(options);
  const stoch::StochasticValue predicted(10.0, 2.0);
  for (int i = 0; i < 8; ++i) recal.record("m", predicted, 14.0);  // s = 2
  bridge.set_transform(recal.binding_transform());

  const auto widened = bridge.publish()->lookup("cpu/a");
  EXPECT_DOUBLE_EQ(widened.mean(), base.mean());
  // Widened by the overall scale, but capped at 98% of the mean so the
  // lower bound stays strictly positive (models divide by loads).
  const double expected =
      std::min(recal.overall_scale() * base.halfwidth(),
               0.98 * std::abs(base.mean()));
  EXPECT_NEAR(widened.halfwidth(), expected, 1e-12);
  EXPECT_GT(widened.lower(), 0.0);

  // A null transform restores pass-through publishing.
  bridge.set_transform(nullptr);
  const auto again = bridge.publish()->lookup("cpu/a");
  EXPECT_DOUBLE_EQ(again.halfwidth(), base.halfwidth());
}

// ---------------------------------------------------- serve integration

serve::ModelSpec small_spec(std::size_t n = 200, std::size_t hosts = 2) {
  serve::ModelSpec spec;
  spec.app = serve::ModelSpec::App::kSor;
  spec.platform = cluster::dedicated_platform(hosts);
  spec.config.n = n;
  spec.config.iterations = 5;
  return spec;
}

serve::PredictRequest stochastic_request(const std::string& id,
                                         std::size_t hosts = 2) {
  serve::PredictRequest request;
  request.model_id = id;
  for (std::size_t i = 0; i < hosts; ++i) {
    request.loads.push_back(stoch::StochasticValue(0.8, 0.1));
  }
  return request;
}

TEST(CalibServe, ReportObservationFeedsTheLedger) {
  auto ledger = std::make_shared<AccuracyLedger>();
  serve::ServiceOptions options;
  options.workers = 2;
  options.ledger = ledger;
  serve::PredictionService service(options);
  service.register_model("sor", small_spec());

  auto result = service.submit(stochastic_request("sor")).get();
  ASSERT_TRUE(result.ok());
  ASSERT_GT(result.request_id, 0u);

  EXPECT_TRUE(service.report_observation(result.request_id,
                                         result.value.mean()));
  const auto snap = ledger->snapshot("sor");
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.inside, 1u);  // we reported the predicted mean itself
  EXPECT_DOUBLE_EQ(snap.sharpness, result.value.halfwidth());

  // Double report and unknown ids are unmatched, not errors.
  EXPECT_FALSE(service.report_observation(result.request_id, 1.0));
  EXPECT_FALSE(service.report_observation(999999, 1.0));
  EXPECT_EQ(ledger->snapshot("sor").count, 1u);
  EXPECT_EQ(service.metrics().counter("observations_recorded").value(), 1u);
  EXPECT_EQ(service.metrics().counter("observations_unmatched").value(), 2u);
}

TEST(CalibServe, ReportWithoutLedgerIsUnmatched) {
  serve::PredictionService service;
  service.register_model("sor", small_spec());
  auto result = service.submit(stochastic_request("sor")).get();
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(service.report_observation(result.request_id, 1.0));
}

TEST(CalibServe, CompletedPredictionsAreFifoBounded) {
  auto ledger = std::make_shared<AccuracyLedger>();
  serve::ServiceOptions options;
  options.workers = 1;
  options.ledger = ledger;
  options.observation_capacity = 4;
  serve::PredictionService service(options);
  service.register_model("sor", small_spec());

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 8; ++i) {
    auto result = service.submit(stochastic_request("sor")).get();
    ASSERT_TRUE(result.ok());
    ids.push_back(result.request_id);
  }
  // The four oldest were evicted; the four newest still match.
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(service.report_observation(ids[size_t(i)], 1.0));
  }
  for (int i = 4; i < 8; ++i) {
    EXPECT_TRUE(service.report_observation(ids[size_t(i)], 1.0));
  }
  EXPECT_EQ(ledger->snapshot("sor").count, 4u);
}

// Concurrent submit + report from many threads; run under TSan in CI.
TEST(CalibServe, ConcurrentReportersAreRaceFree) {
  auto ledger = std::make_shared<AccuracyLedger>();
  serve::ServiceOptions options;
  options.workers = 4;
  options.ledger = ledger;
  serve::PredictionService service(options);
  service.register_model("sor", small_spec());

  constexpr int kThreads = 4;
  constexpr int kPerThread = 16;
  std::vector<std::thread> threads;
  std::atomic<int> recorded{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&service, &recorded] {
      for (int i = 0; i < kPerThread; ++i) {
        auto result = service.submit(stochastic_request("sor")).get();
        if (result.ok() &&
            service.report_observation(result.request_id,
                                       result.value.mean())) {
          recorded.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(recorded.load(), kThreads * kPerThread);
  EXPECT_EQ(ledger->snapshot("sor").count,
            std::uint64_t(kThreads * kPerThread));
}

// ------------------------------------------------------- closed loop

// Ground truth from the sim engine: run the predict-then-execute series
// and feed (prediction, actual) into the full calibration stack. Twice,
// to pin down determinism of the whole loop.
TEST(CalibClosedLoop, SimSeriesIsDeterministicThroughTheStack) {
  predict::SeriesConfig cfg;
  cfg.platform = cluster::platform1();
  cfg.sor.n = 300;
  cfg.sor.iterations = 10;
  cfg.sor.real_numerics = false;
  cfg.trials = 4;
  cfg.load_source = predict::LoadParameterSource::kRecentSample;
  cfg.bwavail = stoch::StochasticValue::from_mean_sd(0.525, 0.06);

  const auto run_once = [&cfg] {
    const auto outcomes = predict::run_series(cfg);
    AccuracyLedger ledger;
    ConformalRecalibrator recal;
    auto clock = std::make_shared<support::FakeClock>(0.0);
    DriftMonitor monitor({}, clock);
    for (const auto& o : outcomes) {
      clock->set(o.start_time);
      ledger.record("sor", o.predicted, o.actual);
      recal.record("sor", o.predicted, o.actual);
      const double z = (o.actual - o.predicted.mean()) / o.predicted.sd();
      monitor.update("sor", z, o.predicted.contains(o.actual));
    }
    return std::tuple{ledger.snapshot("sor"), recal.scale("sor"),
                      monitor.alarms().size()};
  };

  const auto [snap1, scale1, alarms1] = run_once();
  const auto [snap2, scale2, alarms2] = run_once();
  EXPECT_EQ(snap1.count, 4u);
  EXPECT_GT(snap1.sharpness, 0.0);
  EXPECT_DOUBLE_EQ(snap1.coverage, snap2.coverage);
  EXPECT_DOUBLE_EQ(snap1.mean_crps, snap2.mean_crps);
  EXPECT_DOUBLE_EQ(snap1.z_mean, snap2.z_mean);
  EXPECT_DOUBLE_EQ(snap1.abs_z_quantile, snap2.abs_z_quantile);
  EXPECT_DOUBLE_EQ(scale1, scale2);
  EXPECT_EQ(alarms1, alarms2);
}

}  // namespace
}  // namespace sspred::calib
