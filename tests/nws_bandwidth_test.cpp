// Tests for the NWS bandwidth sensor and its integration with the
// prediction harness.
#include <gtest/gtest.h>

#include "nws/sensor.hpp"
#include "nws/service.hpp"
#include "predict/experiment.hpp"

namespace sspred::nws {
namespace {

TEST(BandwidthSensor, MeasuresDedicatedSegmentNearFull) {
  sim::Engine engine;
  net::EthernetSpec spec;
  spec.availability = net::dedicated_availability();
  net::SharedEthernet ethernet(engine, spec, 1);
  Service service;
  engine.spawn(bandwidth_sensor(engine, ethernet, service, 32.0 * 1024.0,
                                10.0, 600.0));
  engine.run();
  EXPECT_GE(service.history_size(ethernet_resource()), 50u);
  const auto fc = service.forecast(ethernet_resource());
  // Probes see ~full bandwidth minus their own serialization.
  EXPECT_GT(fc.value, 0.9);
  EXPECT_LE(fc.value, 1.01);
}

TEST(BandwidthSensor, SeesLongTailedCrossTraffic) {
  sim::Engine engine;
  net::EthernetSpec spec;
  spec.availability = cluster::production_ethernet_availability();
  net::SharedEthernet ethernet(engine, spec, 3);
  Service service;
  engine.spawn(bandwidth_sensor(engine, ethernet, service, 32.0 * 1024.0,
                                10.0, 2'000.0));
  engine.run();
  const auto fc = service.forecast(ethernet_resource());
  EXPECT_NEAR(fc.value, 0.525, 0.12);  // the Fig.3 profile
  EXPECT_GT(fc.error_sd, 0.01);        // variability is visible
}

TEST(BandwidthSensor, ObservesApplicationContention) {
  // A long bulk transfer halves what a concurrent probe measures.
  sim::Engine engine;
  net::EthernetSpec spec;
  spec.availability = net::dedicated_availability();
  net::SharedEthernet ethernet(engine, spec, 5);
  Service service;
  engine.spawn(bandwidth_sensor(engine, ethernet, service, 64.0 * 1024.0,
                                5.0, 100.0));
  // Saturating background transfer for the whole window.
  ethernet.start_transfer(1.25e6 * 100.0, [] {});
  engine.run_until(100.0);
  const auto h = service.history(ethernet_resource());
  ASSERT_GE(h.size(), 10u);
  double mean = 0.0;
  for (double v : h) mean += v;
  mean /= static_cast<double>(h.size());
  EXPECT_NEAR(mean, 0.5, 0.08);  // fair share of two flows
}

TEST(BandwidthSensor, FeedsExperimentHarness) {
  predict::SeriesConfig cfg;
  cfg.platform = cluster::dedicated_platform(4);
  cfg.sor.n = 300;
  cfg.sor.iterations = 8;
  cfg.sor.real_numerics = false;
  cfg.trials = 3;
  cfg.load_source = predict::LoadParameterSource::kDedicated;
  cfg.bw_source = predict::BandwidthSource::kNwsProbe;
  const auto outcomes = predict::run_series(cfg);
  ASSERT_EQ(outcomes.size(), 3u);
  for (const auto& o : outcomes) {
    // Probe-parameterized predictions still track a dedicated platform.
    EXPECT_NEAR(o.predicted.mean(), o.actual, 0.06 * o.actual);
  }
}

}  // namespace
}  // namespace sspred::nws
