// Allocation-freedom of the warm Monte-Carlo path (own binary: it
// overrides global operator new to count every heap allocation in the
// process).
//
// The serving layer pools one EvalWorkspace per worker (WorkerState in
// serve/service.cpp) precisely so that the blocked engine's SoA arenas —
// lane_values / lane_slots / lane_saved plus the trial-results buffer —
// are paid for once per worker and reused across requests. This test pins
// the contract that makes the pooling worth it: after a warmup call has
// sized the arenas, sample_trials()/sample_into() on the same workspace
// must not allocate at all.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "model/compile.hpp"
#include "model/expr.hpp"
#include "model/ir.hpp"
#include "stoch/stochastic_value.hpp"
#include "support/rng.hpp"

// The replaced operator new hands out malloc'd memory that the replaced
// operator delete frees; GCC's heuristic pairs call sites across the TU
// and flags the malloc/free crossing, but the pairing is the point here.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

// Counting overrides for every replaceable allocation signature a
// libstdc++ container can reach. Deletes stay uncounted: freeing reused
// capacity is fine, acquiring new memory on the hot path is not.
void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  ++g_allocations;
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) /
                                       static_cast<std::size_t>(align) *
                                       static_cast<std::size_t>(align))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace sspred::model {
namespace {

using stoch::Dependence;
using stoch::StochasticValue;

TEST(McEngineAlloc, WarmBlockedSamplingIsAllocationFree) {
  // A model exercising every allocation-prone engine feature: stochastic
  // constants, an unrelated iterate (body-slot save/restore rows) and a
  // shared subtree (kRef region save/restore rows).
  const auto shared = mul(param("a"), constant(StochasticValue(2.0, 0.5)));
  const auto body = add(shared, mul(param("b"), shared));
  const auto expr = iterate(body, 6, Dependence::kUnrelated);
  const ir::Program prog = compile(*expr);
  ir::SlotEnvironment env = prog.make_environment();
  env.bind(prog.slot("a"), StochasticValue(1.0, 0.3));
  env.bind(prog.slot("b"), StochasticValue(0.8, 0.2));

  support::Rng rng(2026);
  ir::EvalWorkspace ws;
  constexpr std::size_t kTrials = 3000;  // multiple blocks per call

  // Warmup sizes every arena (lane rows, slot rows, save stack, results).
  (void)prog.sample_trials(env, rng, kTrials, ws);

  const std::uint64_t before = g_allocations.load();
  double acc = 0.0;
  for (int i = 0; i < 5; ++i) {
    acc += prog.sample_trials(env, rng, kTrials, ws).mean();
  }
  std::vector<double> out(kTrials);  // allocated outside the hot section
  const std::uint64_t before_into = g_allocations.load();
  prog.sample_into(env, rng, out, ws);
  const std::uint64_t after = g_allocations.load();

  EXPECT_EQ(before_into - before, 1u)  // only `out` itself
      << "warm sample_trials allocated";
  EXPECT_EQ(after, before_into) << "warm sample_into allocated";
  EXPECT_GT(acc, 0.0);
}

TEST(McEngineAlloc, WarmFusedSamplingIsAllocationFree) {
  // Same allocation-prone model as above, evaluated request-major: once a
  // warmup sweep has sized the fused arenas (stride = lanes * kBlockTrials)
  // and the LaneEnvironment, rebinding lanes and re-running sample_fused /
  // evaluate_fused / evaluate_point_fused must not allocate. This is what
  // lets the serving layer keep one LaneEnvironment per worker.
  const auto shared = mul(param("a"), constant(StochasticValue(2.0, 0.5)));
  const auto body = add(shared, mul(param("b"), shared));
  const auto expr = iterate(body, 6, Dependence::kUnrelated);
  const ir::Program prog = compile(*expr);

  constexpr std::size_t kLanes = 6;
  constexpr std::size_t kTrials = 3000;  // multiple blocks per sweep
  ir::LaneEnvironment env = prog.make_lane_environment(kLanes);
  std::vector<support::Rng> rngs;
  std::vector<StochasticValue> out(kLanes);
  std::vector<double> points(kLanes);
  for (std::size_t k = 0; k < kLanes; ++k) rngs.emplace_back(100 + k);

  const auto bind_all = [&] {
    for (std::size_t k = 0; k < kLanes; ++k) {
      env.bind(k, prog.slot("a"), StochasticValue(1.0 + 0.1 * k, 0.3));
      env.bind(k, prog.slot("b"), StochasticValue(0.8, 0.2 + 0.01 * k));
    }
  };
  bind_all();
  ir::EvalWorkspace ws;
  // Warmup sizes every arena each entry point touches.
  prog.sample_fused(env, rngs, kTrials, ws, out);
  prog.evaluate_fused(env, ws, out);
  prog.evaluate_point_fused(env, ws, points);

  const std::uint64_t before = g_allocations.load();
  double acc = 0.0;
  for (int i = 0; i < 5; ++i) {
    env.reset(prog, kLanes);  // per-request reset reuses capacity
    bind_all();
    prog.sample_fused(env, rngs, kTrials, ws, out);
    prog.evaluate_fused(env, ws, out);
    prog.evaluate_point_fused(env, ws, points);
    acc += out[0].mean() + points[0];
  }
  EXPECT_EQ(g_allocations.load(), before) << "warm fused path allocated";
  EXPECT_GT(acc, 0.0);
}

TEST(McEngineAlloc, WorkspaceReuseAcrossTrialCountsOnlyGrows) {
  const auto expr = add(param("x"), constant(StochasticValue(1.0, 0.2)));
  const ir::Program prog = compile(*expr);
  ir::SlotEnvironment env = prog.make_environment();
  env.bind(prog.slot("x"), StochasticValue(1.0, 0.4));

  support::Rng rng(7);
  ir::EvalWorkspace ws;
  // Warm with the largest trial count the loop will see...
  (void)prog.sample_trials(env, rng, 4096, ws);
  const std::uint64_t before = g_allocations.load();
  // ...then every smaller request fits in the retained capacity.
  for (const std::size_t trials : {64u, 1000u, 2048u, 4096u}) {
    (void)prog.sample_trials(env, rng, trials, ws);
  }
  EXPECT_EQ(g_allocations.load(), before);
}

}  // namespace
}  // namespace sspred::model
