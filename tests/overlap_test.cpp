// Tests for the communication/computation-overlap SOR variant.
#include <gtest/gtest.h>

#include "sor/distributed.hpp"
#include "sor/serial.hpp"

namespace sspred::sor {
namespace {

TEST(OverlapSor, NumericallyIdenticalToBlocking) {
  SorConfig cfg;
  cfg.n = 24;
  cfg.iterations = 10;
  cfg.gather_solution = true;

  sim::Engine e1;
  cluster::Platform p1(e1, cluster::dedicated_platform(3), 5);
  const SorResult blocking = run_distributed_sor(e1, p1, cfg);

  cfg.overlap_comm = true;
  sim::Engine e2;
  cluster::Platform p2(e2, cluster::dedicated_platform(3), 5);
  const SorResult overlapped = run_distributed_sor(e2, p2, cfg);

  ASSERT_EQ(blocking.solution.size(), overlapped.solution.size());
  for (std::size_t i = 0; i < blocking.solution.size(); ++i) {
    ASSERT_DOUBLE_EQ(blocking.solution[i], overlapped.solution[i]);
  }
  // And both equal the serial reference.
  SerialSor serial(cfg.n);
  serial.iterate(cfg.iterations);
  for (std::size_t i = 0; i < cfg.n; ++i) {
    for (std::size_t j = 0; j < cfg.n; ++j) {
      ASSERT_DOUBLE_EQ(overlapped.solution[i * cfg.n + j], serial.at(i, j));
    }
  }
}

TEST(OverlapSor, HidesCommunicationTime) {
  // Comm-heavy configuration: smallish grid, several ranks, so the ghost
  // exchange is a visible fraction of each iteration.
  SorConfig cfg;
  cfg.n = 300;
  cfg.iterations = 12;
  cfg.real_numerics = false;

  sim::Engine e1;
  cluster::Platform p1(e1, cluster::dedicated_platform(4), 9);
  const double t_blocking = run_distributed_sor(e1, p1, cfg).total_time;

  cfg.overlap_comm = true;
  sim::Engine e2;
  cluster::Platform p2(e2, cluster::dedicated_platform(4), 9);
  const double t_overlap = run_distributed_sor(e2, p2, cfg).total_time;

  EXPECT_LT(t_overlap, 0.95 * t_blocking);
}

TEST(OverlapSor, RecordedCommPhasesShrink) {
  SorConfig cfg;
  cfg.n = 300;
  cfg.iterations = 10;
  cfg.real_numerics = false;

  sim::Engine e1;
  cluster::Platform p1(e1, cluster::dedicated_platform(4), 11);
  const SorResult blocking = run_distributed_sor(e1, p1, cfg);

  cfg.overlap_comm = true;
  sim::Engine e2;
  cluster::Platform p2(e2, cluster::dedicated_platform(4), 11);
  const SorResult overlapped = run_distributed_sor(e2, p2, cfg);

  auto total_comm = [](const SorResult& r) {
    double acc = 0.0;
    for (const auto& rank : r.ranks) {
      for (const auto& t : rank.iterations) {
        acc += t.red_comm + t.black_comm;
      }
    }
    return acc;
  };
  EXPECT_LT(total_comm(overlapped), 0.7 * total_comm(blocking));
}

TEST(OverlapSor, SingleRowStripsFallBackToBlocking) {
  SorConfig cfg;
  cfg.n = 4;  // one row per rank on 4 hosts
  cfg.iterations = 3;
  cfg.overlap_comm = true;
  cfg.gather_solution = true;
  sim::Engine engine;
  cluster::Platform platform(engine, cluster::dedicated_platform(4), 13);
  const SorResult result = run_distributed_sor(engine, platform, cfg);
  SerialSor serial(cfg.n);
  serial.iterate(cfg.iterations);
  for (std::size_t i = 0; i < cfg.n; ++i) {
    for (std::size_t j = 0; j < cfg.n; ++j) {
      ASSERT_DOUBLE_EQ(result.solution[i * cfg.n + j], serial.at(i, j));
    }
  }
}

}  // namespace
}  // namespace sspred::sor
