// Unit tests for the structural-modeling expression framework.
#include <gtest/gtest.h>

#include <cmath>

#include "model/expr.hpp"
#include "support/error.hpp"

namespace sspred::model {
namespace {

using stoch::Dependence;
using stoch::ExtremePolicy;
using stoch::StochasticValue;

TEST(Environment, BindLookupRoundTrip) {
  Environment env;
  env.bind("load", StochasticValue(0.48, 0.05));
  EXPECT_TRUE(env.has("load"));
  EXPECT_FALSE(env.has("other"));
  EXPECT_DOUBLE_EQ(env.lookup("load").mean(), 0.48);
  EXPECT_THROW((void)env.lookup("other"), support::Error);
  env.bind("load", StochasticValue(0.9));
  EXPECT_DOUBLE_EQ(env.lookup("load").mean(), 0.9);  // rebinding
}

TEST(Expr, ConstantEvaluates) {
  const auto c = constant(StochasticValue(5.0, 1.0));
  Environment env;
  EXPECT_EQ(c->evaluate(env), StochasticValue(5.0, 1.0));
  EXPECT_DOUBLE_EQ(c->evaluate_point(env), 5.0);
}

TEST(Expr, ParamResolvesFromEnvironment) {
  const auto p = param("x");
  Environment env;
  env.bind("x", StochasticValue(3.0, 0.6));
  EXPECT_EQ(p->evaluate(env), StochasticValue(3.0, 0.6));
  EXPECT_DOUBLE_EQ(p->evaluate_point(env), 3.0);
  Environment empty;
  EXPECT_THROW(p->evaluate(empty), support::Error);
}

TEST(Expr, SumUsesDependenceRegime) {
  const auto x = constant(StochasticValue(10.0, 3.0));
  const auto y = constant(StochasticValue(5.0, 4.0));
  Environment env;
  EXPECT_DOUBLE_EQ(sum({x, y}, Dependence::kRelated)->evaluate(env).halfwidth(),
                   7.0);
  EXPECT_DOUBLE_EQ(
      sum({x, y}, Dependence::kUnrelated)->evaluate(env).halfwidth(), 5.0);
}

TEST(Expr, QuotientMatchesCalculus) {
  Environment env;
  env.bind("load", StochasticValue(0.5, 0.1));
  const auto e = quotient(constant(StochasticValue(10.0)), param("load"),
                          Dependence::kUnrelated);
  const StochasticValue v = e->evaluate(env);
  EXPECT_DOUBLE_EQ(v.mean(), 20.0);
  EXPECT_DOUBLE_EQ(e->evaluate_point(env), 20.0);
  EXPECT_GT(v.halfwidth(), 0.0);
}

TEST(Expr, MaxPolicyLargestMean) {
  Environment env;
  const auto e = vmax({constant(StochasticValue(4.0, 0.5)),
                       constant(StochasticValue(3.0, 2.0))},
                      ExtremePolicy::kLargestMean);
  EXPECT_EQ(e->evaluate(env), StochasticValue(4.0, 0.5));
  EXPECT_DOUBLE_EQ(e->evaluate_point(env), 4.0);
}

TEST(Expr, MinPointEvaluation) {
  Environment env;
  const auto e = vmin({constant(StochasticValue(4.0, 0.5)),
                       constant(StochasticValue(3.0, 2.0))},
                      ExtremePolicy::kLargestMean);
  EXPECT_DOUBLE_EQ(e->evaluate_point(env), 3.0);
}

TEST(Expr, IterateScalesMeanLinearly) {
  Environment env;
  const auto body = constant(StochasticValue(2.0, 0.4));
  const auto rel = iterate(body, 25, Dependence::kRelated);
  EXPECT_DOUBLE_EQ(rel->evaluate(env).mean(), 50.0);
  EXPECT_DOUBLE_EQ(rel->evaluate(env).halfwidth(), 10.0);
  const auto unrel = iterate(body, 25, Dependence::kUnrelated);
  EXPECT_DOUBLE_EQ(unrel->evaluate(env).mean(), 50.0);
  EXPECT_DOUBLE_EQ(unrel->evaluate(env).halfwidth(), 2.0);  // sqrt(25)*0.4
  EXPECT_DOUBLE_EQ(rel->evaluate_point(env), 50.0);
}

TEST(Expr, ParametersCollectsDistinctNames) {
  const auto e = add(quotient(constant(StochasticValue(1.0)), param("load"),
                              Dependence::kUnrelated),
                     mul(param("bw"), param("load")));
  const auto names = e->parameters();
  EXPECT_EQ(names, (std::vector<std::string>{"bw", "load"}));
}

TEST(Expr, ToStringMentionsStructure) {
  const auto e =
      vmax({param("a"), param("b")}, ExtremePolicy::kLargestMean);
  const std::string s = e->to_string();
  EXPECT_NE(s.find("max"), std::string::npos);
  EXPECT_NE(s.find('a'), std::string::npos);
}

TEST(Expr, EmptyOperandsRejected) {
  EXPECT_THROW((void)sum({}), support::Error);
  EXPECT_THROW((void)vmax({}, ExtremePolicy::kClark), support::Error);
  EXPECT_THROW((void)iterate(param("x"), 0), support::Error);
}

TEST(MonteCarlo, MatchesClosedFormForLinearModel) {
  // Sum of unrelated params: MC and calculus should agree closely.
  Environment env;
  env.bind("a", StochasticValue(10.0, 2.0));
  env.bind("b", StochasticValue(20.0, 1.0));
  const auto e = sum({param("a"), param("b")}, Dependence::kUnrelated);
  support::Rng rng(3);
  const StochasticValue mc = monte_carlo(*e, env, rng, 100'000);
  const StochasticValue cf = e->evaluate(env);
  EXPECT_NEAR(mc.mean(), cf.mean(), 0.05);
  EXPECT_NEAR(mc.halfwidth(), cf.halfwidth(), 0.05);
}

TEST(MonteCarlo, SharedParamsAreCoupledWithinTrial) {
  // x - x must be exactly zero in every trial when x is cached per trial.
  Environment env;
  env.bind("x", StochasticValue(5.0, 3.0));
  const auto e = sum({param("x"), mul(constant(StochasticValue(-1.0)),
                                      param("x"))},
                     Dependence::kUnrelated);
  support::Rng rng(5);
  const StochasticValue mc = monte_carlo(*e, env, rng, 10'000);
  EXPECT_NEAR(mc.mean(), 0.0, 1e-9);
  EXPECT_NEAR(mc.halfwidth(), 0.0, 1e-9);
}

TEST(MonteCarlo, QuotientTracksCalculusForSmallSpread) {
  Environment env;
  env.bind("load", StochasticValue(0.5, 0.04));
  const auto e = quotient(constant(StochasticValue(100.0)), param("load"),
                          Dependence::kUnrelated);
  support::Rng rng(7);
  const StochasticValue mc = monte_carlo(*e, env, rng, 200'000);
  const StochasticValue cf = e->evaluate(env);
  EXPECT_NEAR(mc.mean(), cf.mean(), 0.5);
  EXPECT_NEAR(mc.halfwidth(), cf.halfwidth(), 0.06 * cf.halfwidth() + 0.1);
}

TEST(MonteCarlo, MaxAgreesWithClarkPolicy) {
  Environment env;
  env.bind("a", StochasticValue::from_mean_sd(10.0, 1.0));
  env.bind("b", StochasticValue::from_mean_sd(10.5, 0.8));
  const auto e = vmax({param("a"), param("b")}, ExtremePolicy::kClark);
  support::Rng rng(9);
  const StochasticValue mc = monte_carlo(*e, env, rng, 200'000);
  const StochasticValue cf = e->evaluate(env);
  EXPECT_NEAR(mc.mean(), cf.mean(), 0.05);
  EXPECT_NEAR(mc.sd(), cf.sd(), 0.06);
}

TEST(MonteCarlo, SorShapedModelEndToEnd) {
  // A miniature SOR-shaped model: iterate(max(comp) + comm).
  Environment env;
  env.bind("load0", StochasticValue(0.48, 0.05));
  env.bind("load1", StochasticValue(0.9, 0.02));
  env.bind("bw", StochasticValue(0.5, 0.1));
  const auto comp0 = quotient(constant(StochasticValue(1.0)), param("load0"),
                              Dependence::kUnrelated);
  const auto comp1 = quotient(constant(StochasticValue(0.6)), param("load1"),
                              Dependence::kUnrelated);
  const auto comm = quotient(constant(StochasticValue(0.05)), param("bw"),
                             Dependence::kUnrelated);
  const auto iter = add(vmax({comp0, comp1}, ExtremePolicy::kLargestMean),
                        comm, Dependence::kUnrelated);
  const auto run = iterate(iter, 30, Dependence::kRelated);
  support::Rng rng(11);
  const StochasticValue cf = run->evaluate(env);
  const StochasticValue mc = monte_carlo(*run, env, rng, 50'000);
  // comp0 dominates: mean ≈ 30*(1/0.48 + 0.05/0.5) ≈ 65.5.
  EXPECT_NEAR(cf.mean(), mc.mean(), 0.05 * mc.mean());
  // The calculus interval must cover the MC spread (conservative).
  EXPECT_GE(cf.halfwidth(), 0.8 * mc.halfwidth());
}

}  // namespace
}  // namespace sspred::model
