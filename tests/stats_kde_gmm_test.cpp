// Unit tests for KDE mode detection and Gaussian-mixture fitting — the
// tools that recover the paper's modal load structure (§2.1.2).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "stats/gmm.hpp"
#include "stats/kde.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace sspred::stats {
namespace {

std::vector<double> bimodal_sample(std::size_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs.push_back(rng.uniform() < 0.4 ? rng.normal(0.0, 0.5)
                                     : rng.normal(5.0, 0.7));
  }
  return xs;
}

std::vector<double> trimodal_sample(std::size_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double u = rng.uniform();
    if (u < 0.25) {
      xs.push_back(rng.normal(0.33, 0.02));
    } else if (u < 0.60) {
      xs.push_back(rng.normal(0.49, 0.03));
    } else {
      xs.push_back(rng.normal(0.94, 0.015));
    }
  }
  return xs;
}

TEST(Kde, DensityIntegratesToOne) {
  const auto xs = bimodal_sample(2'000, 3);
  const Kde kde(xs);
  const auto [grid_x, grid_d] = kde.grid(512);
  double integral = 0.0;
  for (std::size_t i = 1; i < grid_x.size(); ++i) {
    integral += grid_d[i] * (grid_x[i] - grid_x[i - 1]);
  }
  EXPECT_NEAR(integral, 1.0, 0.02);
}

TEST(Kde, FindsBothModes) {
  const auto xs = bimodal_sample(4'000, 5);
  const Kde kde(xs);
  const auto peaks = kde.peaks();
  ASSERT_GE(peaks.size(), 2u);
  std::vector<double> locs{peaks[0].location, peaks[1].location};
  std::sort(locs.begin(), locs.end());
  EXPECT_NEAR(locs[0], 0.0, 0.3);
  EXPECT_NEAR(locs[1], 5.0, 0.3);
}

TEST(Kde, UnimodalHasOneDominantPeak) {
  support::Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 3'000; ++i) xs.push_back(rng.normal(2.0, 1.0));
  const Kde kde(xs);
  const auto peaks = kde.peaks(256, 0.2);
  ASSERT_GE(peaks.size(), 1u);
  EXPECT_NEAR(peaks[0].location, 2.0, 0.2);
  EXPECT_LE(peaks.size(), 2u);
}

TEST(Kde, ExplicitBandwidthHonored) {
  const auto xs = bimodal_sample(500, 9);
  const Kde kde(xs, 0.25);
  EXPECT_DOUBLE_EQ(kde.bandwidth(), 0.25);
}

TEST(Kde, RejectsTinySamples) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW(Kde k(xs), support::Error);
}

TEST(Gmm, RecoversTwoComponents) {
  const auto xs = bimodal_sample(5'000, 11);
  const GmmFit fit = fit_gmm(xs, 2);
  ASSERT_EQ(fit.components.size(), 2u);
  EXPECT_TRUE(fit.converged);
  EXPECT_NEAR(fit.components[0].mean, 0.0, 0.1);
  EXPECT_NEAR(fit.components[1].mean, 5.0, 0.1);
  EXPECT_NEAR(fit.components[0].weight, 0.4, 0.05);
  EXPECT_NEAR(fit.components[1].weight, 0.6, 0.05);
  EXPECT_NEAR(fit.components[0].sd, 0.5, 0.08);
  EXPECT_NEAR(fit.components[1].sd, 0.7, 0.08);
}

TEST(Gmm, RecoversPaperTrimodalLoad) {
  const auto xs = trimodal_sample(6'000, 13);
  const GmmFit fit = fit_gmm(xs, 3);
  ASSERT_EQ(fit.components.size(), 3u);
  EXPECT_NEAR(fit.components[0].mean, 0.33, 0.03);
  EXPECT_NEAR(fit.components[1].mean, 0.49, 0.03);
  EXPECT_NEAR(fit.components[2].mean, 0.94, 0.03);
}

TEST(Gmm, WeightsSumToOne) {
  const auto xs = trimodal_sample(2'000, 17);
  const GmmFit fit = fit_gmm(xs, 3);
  double total = 0.0;
  for (const auto& c : fit.components) total += c.weight;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Gmm, AutoSelectionPrefersTrueK) {
  const auto xs = bimodal_sample(4'000, 19);
  const GmmFit fit = fit_gmm_auto(xs, 5);
  EXPECT_EQ(fit.components.size(), 2u);
}

TEST(Gmm, AutoSelectionOnUnimodalPicksOne) {
  support::Rng rng(23);
  std::vector<double> xs;
  for (int i = 0; i < 3'000; ++i) xs.push_back(rng.normal(1.0, 0.2));
  const GmmFit fit = fit_gmm_auto(xs, 4);
  EXPECT_EQ(fit.components.size(), 1u);
  EXPECT_NEAR(fit.components[0].mean, 1.0, 0.02);
}

TEST(Gmm, ClassifyAssignsToNearestComponent) {
  const auto xs = bimodal_sample(4'000, 29);
  const GmmFit fit = fit_gmm(xs, 2);
  EXPECT_EQ(fit.classify(-0.2), 0u);
  EXPECT_EQ(fit.classify(5.2), 1u);
}

TEST(Gmm, PdfIsMixtureOfComponents) {
  const auto xs = bimodal_sample(4'000, 31);
  const GmmFit fit = fit_gmm(xs, 2);
  // Density near each mode exceeds density in the valley between.
  EXPECT_GT(fit.pdf(0.0), fit.pdf(2.5));
  EXPECT_GT(fit.pdf(5.0), fit.pdf(2.5));
}

TEST(Gmm, SingleComponentMatchesSampleMoments) {
  support::Rng rng(37);
  std::vector<double> xs;
  for (int i = 0; i < 10'000; ++i) xs.push_back(rng.normal(7.0, 1.5));
  const GmmFit fit = fit_gmm(xs, 1);
  ASSERT_EQ(fit.components.size(), 1u);
  EXPECT_NEAR(fit.components[0].mean, 7.0, 0.05);
  EXPECT_NEAR(fit.components[0].sd, 1.5, 0.05);
  EXPECT_DOUBLE_EQ(fit.components[0].weight, 1.0);
}

TEST(Gmm, RequiresEnoughSamples) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_THROW((void)fit_gmm(xs, 2), support::Error);
}

class GmmSeparationSweep : public ::testing::TestWithParam<double> {};

TEST_P(GmmSeparationSweep, RecoversMeansAtVaryingSeparation) {
  const double sep = GetParam();
  support::Rng rng(41);
  std::vector<double> xs;
  for (int i = 0; i < 6'000; ++i) {
    xs.push_back(rng.uniform() < 0.5 ? rng.normal(0.0, 0.1)
                                     : rng.normal(sep, 0.1));
  }
  const GmmFit fit = fit_gmm(xs, 2);
  EXPECT_NEAR(fit.components[0].mean, 0.0, 0.05);
  EXPECT_NEAR(fit.components[1].mean, sep, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Sweep, GmmSeparationSweep,
                         ::testing::Values(0.6, 1.0, 2.0, 4.0));

}  // namespace
}  // namespace sspred::stats
