// Tests for the fused request-major evaluation path: the IR's
// LaneEnvironment + evaluate_fused / evaluate_point_fused / sample_fused
// (model/ir.hpp) and the serving layer's structure-keyed fused dequeue
// grouping (serve/service.hpp).
//
// The contract under test is DETERMINISM: every fused entry point must be
// bit-exact per lane against its single-request counterpart, and
// sample_fused must consume each lane's RNG in exactly the standalone
// kBlocked order (the per-lane substream contract) — so the serving layer
// can batch structure-equal requests into lanes without any observable
// effect beyond throughput. The differential tests here drive random
// expression DAGs through both paths and require bit equality, including
// the post-run RNG states. ServeFused.* are the service-level pins (and
// the TSan stress target for concurrent submit during fused dequeue).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstddef>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "cluster/platform.hpp"
#include "model/compile.hpp"
#include "model/expr.hpp"
#include "model/ir.hpp"
#include "serve/service.hpp"
#include "stoch/stochastic_value.hpp"
#include "support/rng.hpp"

namespace sspred::model {
namespace {

using stoch::Dependence;
using stoch::ExtremePolicy;
using stoch::StochasticValue;

/// Random expression DAGs exercising every opcode the fused kernels
/// implement: sums/products/quotients/extremes/iterates over a small
/// parameter pool with occasional subtree reuse (kRef regions).
ExprPtr random_expr(support::Rng& rng, int depth, std::vector<ExprPtr>& pool) {
  static const std::string kParams[] = {"a", "b", "c"};
  if (depth <= 0 || rng.uniform() < 0.25) {
    switch (rng.uniform_int(4)) {
      case 0:
        return constant(StochasticValue(rng.uniform(0.5, 3.0)));
      case 1:
        return constant(
            StochasticValue(rng.uniform(1.0, 3.0), rng.uniform(0.0, 0.4)));
      case 2:
        if (!pool.empty()) return pool[rng.uniform_int(pool.size())];
        [[fallthrough]];
      default:
        return param(kParams[rng.uniform_int(3)]);
    }
  }
  const auto child = [&] { return random_expr(rng, depth - 1, pool); };
  const auto children = [&](std::size_t lo) {
    std::vector<ExprPtr> out;
    const std::size_t k = lo + rng.uniform_int(3);
    out.reserve(k);
    for (std::size_t i = 0; i < k; ++i) out.push_back(child());
    return out;
  };
  const Dependence dep =
      rng.uniform() < 0.5 ? Dependence::kUnrelated : Dependence::kRelated;
  static const ExtremePolicy kPolicies[] = {ExtremePolicy::kLargestMean,
                                            ExtremePolicy::kLargestUpper,
                                            ExtremePolicy::kClark};
  ExprPtr e;
  switch (rng.uniform_int(6)) {
    case 0:
      e = sum(children(2), dep);
      break;
    case 1:
      e = prod(children(2), dep);
      break;
    case 2:
      // Denominator mean >= 2 with sd <= 0.1 keeps sampled denominators
      // 20+ sigma from zero: deterministic seeds, deterministic safety.
      e = quotient(child(),
                   constant(StochasticValue(rng.uniform(2.0, 4.0),
                                            rng.uniform(0.0, 0.1))),
                   dep);
      break;
    case 3:
      e = vmax(children(2), kPolicies[rng.uniform_int(3)]);
      break;
    case 4:
      e = vmin(children(2), kPolicies[rng.uniform_int(3)]);
      break;
    default:
      e = iterate(child(), 1 + rng.uniform_int(4), dep);
      break;
  }
  pool.push_back(e);
  return e;
}

void expect_sv_eq(const StochasticValue& a, const StochasticValue& b,
                  const std::string& what) {
  EXPECT_DOUBLE_EQ(a.mean(), b.mean()) << what;
  EXPECT_DOUBLE_EQ(a.halfwidth(), b.halfwidth()) << what;
}

/// Distinct per-lane bindings for every slot of `prog`, deterministic in
/// (lane, generator state). Binds the same values into `fused` lane `k`
/// and the returned standalone environment.
ir::SlotEnvironment bind_lane(const ir::Program& prog,
                              ir::LaneEnvironment& fused, std::size_t k,
                              support::Rng& gen) {
  ir::SlotEnvironment solo = prog.make_environment();
  for (std::uint32_t s = 0; s < prog.slot_count(); ++s) {
    const StochasticValue v(gen.uniform(0.6, 1.4), gen.uniform(0.0, 0.3));
    solo.bind(s, v);
    fused.bind(k, s, v);
  }
  return solo;
}

TEST(FusedEngine, SampleFusedBitMatchesStandaloneBlockedOnRandomDags) {
  constexpr std::size_t kDags = 12;
  constexpr std::size_t kLanes = 5;
  // Multiple full blocks plus a remainder block, so segment widths
  // kBlockTrials and (trials % kBlockTrials) both get exercised.
  const std::size_t trials = 2 * ir::kBlockTrials + 452;
  for (std::size_t d = 0; d < kDags; ++d) {
    support::Rng gen(41000 + d);
    std::vector<ExprPtr> pool;
    const ir::Program prog = compile(*random_expr(gen, 4, pool));
    ir::LaneEnvironment fused = prog.make_lane_environment(kLanes);
    std::vector<ir::SlotEnvironment> solos;
    std::vector<support::Rng> rngs;
    std::vector<support::Rng> solo_rngs;
    for (std::size_t k = 0; k < kLanes; ++k) {
      solos.push_back(bind_lane(prog, fused, k, gen));
      rngs.emplace_back(500 + 17 * k + d);       // distinct per-lane seeds
      solo_rngs.emplace_back(500 + 17 * k + d);  // identical twins
    }
    ir::EvalWorkspace ws;
    std::vector<StochasticValue> out(kLanes);
    prog.sample_fused(fused, rngs, trials, ws, out);
    for (std::size_t k = 0; k < kLanes; ++k) {
      const std::string what =
          "dag " + std::to_string(d) + " lane " + std::to_string(k);
      ir::EvalWorkspace solo_ws;
      expect_sv_eq(out[k],
                   prog.sample_trials(solos[k], solo_rngs[k], trials, solo_ws),
                   what);
      // The substream contract: the fused sweep consumed lane k's RNG
      // exactly as far as the standalone run did.
      EXPECT_DOUBLE_EQ(rngs[k].uniform(), solo_rngs[k].uniform())
          << what << " rng state";
    }
  }
}

TEST(FusedEngine, EvaluateFusedMatchesPerLaneEvaluateOnRandomDags) {
  constexpr std::size_t kDags = 12;
  constexpr std::size_t kLanes = 7;
  for (std::size_t d = 0; d < kDags; ++d) {
    support::Rng gen(52000 + d);
    std::vector<ExprPtr> pool;
    const ir::Program prog = compile(*random_expr(gen, 4, pool));
    ir::LaneEnvironment fused = prog.make_lane_environment(kLanes);
    std::vector<ir::SlotEnvironment> solos;
    for (std::size_t k = 0; k < kLanes; ++k) {
      solos.push_back(bind_lane(prog, fused, k, gen));
    }
    ir::EvalWorkspace ws;
    std::vector<StochasticValue> values(kLanes);
    std::vector<double> points(kLanes);
    prog.evaluate_fused(fused, ws, values);
    prog.evaluate_point_fused(fused, ws, points);
    for (std::size_t k = 0; k < kLanes; ++k) {
      const std::string what =
          "dag " + std::to_string(d) + " lane " + std::to_string(k);
      expect_sv_eq(values[k], prog.evaluate(solos[k]), what + " stochastic");
      EXPECT_DOUBLE_EQ(points[k], prog.evaluate_point(solos[k]))
          << what << " point";
    }
  }
}

TEST(FusedEngine, LaneCountIsInvisibleToEachLane) {
  // Lane k's result must not depend on how many other lanes share the
  // sweep: one lane, a few, or many — same bindings + seed, same bits.
  support::Rng gen(63001);
  std::vector<ExprPtr> pool;
  const ir::Program prog = compile(*random_expr(gen, 4, pool));
  const std::size_t trials = ir::kBlockTrials + 77;
  std::vector<StochasticValue> bindings;
  for (std::uint32_t s = 0; s < prog.slot_count(); ++s) {
    bindings.emplace_back(gen.uniform(0.6, 1.4), gen.uniform(0.0, 0.3));
  }
  const auto run_with_lanes = [&](std::size_t lanes) {
    ir::LaneEnvironment env = prog.make_lane_environment(lanes);
    std::vector<support::Rng> rngs;
    for (std::size_t k = 0; k < lanes; ++k) {
      for (std::uint32_t s = 0; s < prog.slot_count(); ++s) {
        // Lane 0 gets the probe bindings; others get shifted ones.
        env.bind(k, s, k == 0 ? bindings[s]
                              : StochasticValue(bindings[s].mean() + 0.1 * k,
                                                bindings[s].halfwidth()));
      }
      rngs.emplace_back(k == 0 ? 909u : 7000 + k);
    }
    ir::EvalWorkspace ws;
    std::vector<StochasticValue> out(lanes);
    prog.sample_fused(env, rngs, trials, ws, out);
    return out[0];
  };
  const StochasticValue one = run_with_lanes(1);
  expect_sv_eq(run_with_lanes(2), one, "2 lanes");
  expect_sv_eq(run_with_lanes(9), one, "9 lanes");
  expect_sv_eq(run_with_lanes(32), one, "32 lanes");
}

TEST(FusedEngine, PurePointProgramShortCircuitsWithoutDraws) {
  const ir::Program prog = compile(*constant(StochasticValue(4.0)));
  ir::LaneEnvironment env = prog.make_lane_environment(3);
  std::vector<support::Rng> rngs{support::Rng(1), support::Rng(2),
                                 support::Rng(3)};
  ir::EvalWorkspace ws;
  std::vector<StochasticValue> out(3);
  prog.sample_fused(env, rngs, 100, ws, out);
  for (const auto& v : out) {
    EXPECT_DOUBLE_EQ(v.mean(), 4.0);
    EXPECT_DOUBLE_EQ(v.halfwidth(), 0.0);
  }
  // No lane consumed any RNG (mirrors sample_trials' kBlocked contract).
  support::Rng fresh(1);
  EXPECT_DOUBLE_EQ(rngs[0].uniform(), fresh.uniform());
}

TEST(FusedEngine, LaneEnvironmentErrorsNameLaneAndSlot) {
  const ir::Program prog = compile(*add(param("a"), param("b")));
  ir::LaneEnvironment env = prog.make_lane_environment(2);
  env.bind(0, prog.slot("a"), StochasticValue(1.0));
  env.bind(0, prog.slot("b"), StochasticValue(1.0));
  env.bind(1, prog.slot("a"), StochasticValue(1.0));
  // lane 1 slot "b" left unbound
  ir::EvalWorkspace ws;
  std::vector<StochasticValue> out(2);
  try {
    prog.evaluate_fused(env, ws, out);
    FAIL() << "expected an unbound-slot error";
  } catch (const std::exception& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("lane 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'b'"), std::string::npos) << msg;
  }
  EXPECT_THROW(env.bind(2, 0, StochasticValue(1.0)), std::exception);
}

}  // namespace
}  // namespace sspred::model

namespace sspred::serve {
namespace {

using stoch::StochasticValue;

ModelSpec small_spec(std::size_t n = 200, std::size_t hosts = 2) {
  ModelSpec spec;
  spec.app = ModelSpec::App::kSor;
  spec.platform = cluster::dedicated_platform(hosts);
  spec.config.n = n;
  spec.config.iterations = 5;
  return spec;
}

/// Distinct-bindings request `i` against model `id` (same structure,
/// different load vector — the fused path's target workload).
PredictRequest distinct_request(const std::string& id, std::size_t hosts,
                                std::size_t i, Mode mode = Mode::kStochastic) {
  PredictRequest request;
  request.model_id = id;
  request.mode = mode;
  for (std::size_t h = 0; h < hosts; ++h) {
    request.loads.emplace_back(0.5 + 0.01 * double(i) + 0.05 * double(h),
                               0.05 + 0.002 * double(i));
  }
  if (mode == Mode::kMonteCarlo) {
    request.trials = 600;
    request.seed = 100 + i;
  }
  return request;
}

void expect_result_eq(const PredictResult& a, const PredictResult& b,
                      const std::string& what) {
  ASSERT_TRUE(a.ok()) << what << ": " << a.error;
  ASSERT_TRUE(b.ok()) << what << ": " << b.error;
  EXPECT_DOUBLE_EQ(a.value.mean(), b.value.mean()) << what;
  EXPECT_DOUBLE_EQ(a.value.halfwidth(), b.value.halfwidth()) << what;
  EXPECT_DOUBLE_EQ(a.point, b.point) << what;
}

TEST(ServeFused, FusedResultsBitMatchTheUnfusedService) {
  for (const Mode mode : {Mode::kStochastic, Mode::kPoint, Mode::kMonteCarlo}) {
    ServiceOptions fused_options;
    fused_options.workers = 2;
    fused_options.start_paused = true;
    ServiceOptions solo_options = fused_options;
    solo_options.enable_fusion = false;
    PredictionService fused(fused_options);
    PredictionService solo(solo_options);
    fused.register_model("sor", small_spec());
    solo.register_model("sor", small_spec());

    constexpr std::size_t kRequests = 24;
    std::vector<std::future<PredictResult>> ff, sf;
    for (std::size_t i = 0; i < kRequests; ++i) {
      ff.push_back(fused.submit(distinct_request("sor", 2, i, mode)));
      sf.push_back(solo.submit(distinct_request("sor", 2, i, mode)));
    }
    fused.resume();
    solo.resume();
    for (std::size_t i = 0; i < kRequests; ++i) {
      expect_result_eq(ff[i].get(), sf[i].get(),
                       "mode " + std::to_string(int(mode)) + " request " +
                           std::to_string(i));
    }
    // Staged distinct-bindings requests actually took the fused path.
    EXPECT_GT(fused.metrics().counter("requests_fused").value(), 0u);
    EXPECT_EQ(solo.metrics().counter("requests_fused").value(), 0u);
  }
}

TEST(ServeFused, ResultsAreInvariantToWorkerCountAndBatchSize) {
  const auto run = [](std::size_t workers, std::size_t max_batch) {
    ServiceOptions options;
    options.workers = workers;
    options.max_batch = max_batch;
    options.start_paused = true;
    PredictionService service(options);
    service.register_model("sor", small_spec());
    std::vector<std::future<PredictResult>> futures;
    for (std::size_t i = 0; i < 30; ++i) {
      futures.push_back(
          service.submit(distinct_request("sor", 2, i, Mode::kMonteCarlo)));
    }
    service.resume();
    std::vector<StochasticValue> values;
    for (auto& f : futures) {
      auto r = f.get();
      EXPECT_TRUE(r.ok()) << r.error;
      values.push_back(r.value);
    }
    return values;
  };
  const auto baseline = run(1, 64);
  for (const auto& [workers, batch] :
       {std::pair<std::size_t, std::size_t>{4, 64}, {1, 4}, {3, 7}}) {
    const auto values = run(workers, batch);
    ASSERT_EQ(values.size(), baseline.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
      EXPECT_DOUBLE_EQ(values[i].mean(), baseline[i].mean())
          << workers << " workers, batch " << batch << ", request " << i;
      EXPECT_DOUBLE_EQ(values[i].halfwidth(), baseline[i].halfwidth())
          << workers << " workers, batch " << batch << ", request " << i;
    }
  }
}

TEST(ServeFused, MixedIdenticalAndStructureEqualRequestsShareOneSweep) {
  ServiceOptions options;
  options.workers = 1;  // one dequeue scan sees the whole staged queue
  options.start_paused = true;
  PredictionService service(options);
  service.register_model("sor", small_spec());
  // Two ids, same structure: fusion groups across ids by structure key.
  service.register_model("sor-alias", small_spec());

  const auto a = distinct_request("sor", 2, 0);
  const auto b = distinct_request("sor", 2, 1);
  const auto c = distinct_request("sor-alias", 2, 2);
  std::vector<std::future<PredictResult>> fa, fb, fc;
  for (int i = 0; i < 3; ++i) fa.push_back(service.submit(a));
  for (int i = 0; i < 2; ++i) fb.push_back(service.submit(b));
  fc.push_back(service.submit(c));
  service.resume();
  service.drain();

  // Identical requests collapsed onto their lane (one evaluation, result
  // fanned out); distinct bindings and the structure-equal alias joined
  // as further lanes of ONE fused sweep.
  for (auto& f : fa) {
    const auto r = f.get();
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.batch_size, 3u);
  }
  for (auto& f : fb) {
    const auto r = f.get();
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.batch_size, 2u);
  }
  EXPECT_EQ(fc[0].get().batch_size, 1u);
  EXPECT_EQ(service.metrics().counter("requests_coalesced").value(), 3u);
  EXPECT_EQ(service.metrics().counter("requests_fused").value(), 6u);
  const auto& occupancy =
      service.metrics().histogram("fused_batch_occupancy");
  EXPECT_EQ(occupancy.count(), 1u);  // one sweep...
  EXPECT_DOUBLE_EQ(occupancy.min(), 3.0);  // ...of three lanes
  EXPECT_DOUBLE_EQ(occupancy.max(), 3.0);
}

TEST(ServeFused, OccupancyHistogramEdges) {
  {
    // Fusion off: the histogram stays empty however many requests run.
    ServiceOptions options;
    options.workers = 2;
    options.enable_fusion = false;
    PredictionService service(options);
    service.register_model("sor", small_spec());
    std::vector<std::future<PredictResult>> futures;
    for (std::size_t i = 0; i < 8; ++i) {
      futures.push_back(service.submit(distinct_request("sor", 2, i)));
    }
    for (auto& f : futures) EXPECT_TRUE(f.get().ok());
    EXPECT_EQ(service.metrics().histogram("fused_batch_occupancy").count(),
              0u);
    EXPECT_EQ(service.metrics().counter("requests_fused").value(), 0u);
  }
  {
    // Full occupancy: max_batch distinct requests -> one full sweep; the
    // overflow request lands in a later (smaller) one.
    ServiceOptions options;
    options.workers = 1;
    options.max_batch = 4;
    options.start_paused = true;
    PredictionService service(options);
    service.register_model("sor", small_spec());
    std::vector<std::future<PredictResult>> futures;
    for (std::size_t i = 0; i < 5; ++i) {
      futures.push_back(service.submit(distinct_request("sor", 2, i)));
    }
    service.resume();
    for (auto& f : futures) EXPECT_TRUE(f.get().ok());
    service.drain();
    const auto& occupancy =
        service.metrics().histogram("fused_batch_occupancy");
    EXPECT_EQ(occupancy.count(), 1u);  // 4 lanes fused; the 5th ran solo
    EXPECT_DOUBLE_EQ(occupancy.max(), 4.0);
    EXPECT_EQ(service.metrics().counter("requests_fused").value(), 4u);
  }
}

TEST(ServeFused, LaneErrorsFallBackToSoloResultsAndIsolation) {
  // A lane whose bindings cannot resolve (wrong load count) must get its
  // structured error while its fused siblings still succeed — via the
  // whole-batch solo fallback.
  ServiceOptions options;
  options.workers = 1;
  options.start_paused = true;
  PredictionService service(options);
  service.register_model("sor", small_spec());
  auto good0 = service.submit(distinct_request("sor", 2, 0));
  PredictRequest bad = distinct_request("sor", 2, 1);
  bad.loads.pop_back();  // wrong arity -> binding error
  auto failed = service.submit(std::move(bad));
  auto good1 = service.submit(distinct_request("sor", 2, 2));
  service.resume();

  const auto r0 = good0.get();
  const auto rb = failed.get();
  const auto r1 = good1.get();
  EXPECT_TRUE(r0.ok()) << r0.error;
  EXPECT_TRUE(r1.ok()) << r1.error;
  EXPECT_EQ(rb.status, PredictResult::Status::kError);
  EXPECT_NE(rb.error.find("load bindings"), std::string::npos) << rb.error;
  // And the fallback results bit-match an unfused service.
  ServiceOptions solo_options;
  solo_options.workers = 1;
  solo_options.enable_fusion = false;
  PredictionService solo(solo_options);
  solo.register_model("sor", small_spec());
  const auto s0 = solo.submit(distinct_request("sor", 2, 0)).get();
  const auto s1 = solo.submit(distinct_request("sor", 2, 2)).get();
  expect_result_eq(r0, s0, "request 0");
  expect_result_eq(r1, s1, "request 2");
}

TEST(ServeFused, ConcurrentSubmittersDuringFusedDequeueAreRaceFree) {
  // TSan stress: submitters pushing a mix of identical and distinct
  // structure-equal requests race the workers' fused dequeue scans and a
  // publisher flipping epochs. Every future must resolve.
  ServiceOptions options;
  options.workers = 4;
  options.max_batch = 8;
  PredictionService service(options);
  service.register_model("sor", small_spec());

  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 60;
  std::atomic<std::size_t> resolved{0};
  std::vector<std::thread> submitters;
  for (std::size_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        // Every third request repeats bindings (coalesce lane collapse);
        // the rest are distinct (fresh lanes). Alternate modes.
        const std::size_t variant = (i % 3 == 0) ? 0 : t * kPerThread + i;
        const Mode mode =
            i % 4 == 0 ? Mode::kMonteCarlo : Mode::kStochastic;
        auto result = service.submit(distinct_request("sor", 2, variant, mode));
        const auto r = result.get();
        EXPECT_TRUE(r.ok() ||
                    r.status == PredictResult::Status::kRejected)
            << r.error;
        resolved.fetch_add(1);
      }
    });
  }
  for (auto& t : submitters) t.join();
  service.drain();
  EXPECT_EQ(resolved.load(), kThreads * kPerThread);
}

}  // namespace
}  // namespace sspred::serve
