// Failure injection and persistence: what happens when production reality
// departs from the forecast, and round-tripping measurement state.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "machine/load_trace.hpp"
#include "model/expr.hpp"
#include "nws/service.hpp"
#include "predict/sor_model.hpp"
#include "sor/distributed.hpp"
#include "support/error.hpp"

namespace sspred {
namespace {

// --- Load freezes -----------------------------------------------------------

TEST(Freeze, CollapsesAvailabilityInWindowOnly) {
  const machine::LoadTrace base(1.0, std::vector<double>(100, 0.8));
  const auto frozen = base.with_freeze(20.0, 40.0, 0.05);
  EXPECT_DOUBLE_EQ(frozen.at(10.0), 0.8);
  EXPECT_DOUBLE_EQ(frozen.at(25.0), 0.05);
  EXPECT_DOUBLE_EQ(frozen.at(39.9), 0.05);
  EXPECT_DOUBLE_EQ(frozen.at(45.0), 0.8);
  // The original is untouched.
  EXPECT_DOUBLE_EQ(base.at(25.0), 0.8);
}

TEST(Freeze, ValidationErrors) {
  const machine::LoadTrace base(1.0, std::vector<double>(10, 0.8));
  EXPECT_THROW((void)base.with_freeze(5.0, 5.0), support::Error);
  EXPECT_THROW((void)base.with_freeze(5.0, 3.0), support::Error);
  EXPECT_THROW((void)base.with_freeze(1.0, 2.0, 0.0), support::Error);
}

TEST(Freeze, RunSurvivesButPredictionMissesUnforecastSeizure) {
  // An unforecast mid-run machine seizure: the run completes (slowly) and
  // lands far outside the stochastic interval — the honest failure mode
  // of any forecast-based prediction, worth demonstrating explicitly.
  cluster::PlatformSpec spec = cluster::dedicated_platform(4);
  sor::SorConfig cfg;
  cfg.n = 400;
  cfg.iterations = 12;
  cfg.real_numerics = false;

  const predict::SorStructuralModel model(spec, cfg);
  const std::vector<stoch::StochasticValue> loads(
      4, stoch::StochasticValue(0.995, 0.01));
  const auto predicted = model.predict(model.make_env(loads, {1.0}));

  sim::Engine engine;
  cluster::Platform platform(engine, spec, 3);
  // Freeze host 2 for a stretch in the middle of the run.
  platform.machine(2).set_trace(
      platform.machine(2).trace().with_freeze(0.3, 1e9, 0.03));
  const auto result = sor::run_distributed_sor(engine, platform, cfg);

  EXPECT_GT(result.total_time, 1.5 * predicted.upper());  // way outside
  EXPECT_FALSE(predicted.contains(result.total_time));
  // The score machinery reports it rather than crashing.
  const double miss = predicted.out_of_range_distance(result.total_time);
  EXPECT_GT(miss, 0.0);
}

TEST(Freeze, AdaptiveRebalancingRoutesAroundSeizure) {
  // With rebalancing on, the frozen host sheds its rows and the run
  // recovers much of the loss.
  cluster::PlatformSpec spec = cluster::dedicated_platform(4);
  sor::SorConfig cfg;
  cfg.n = 400;
  cfg.iterations = 40;
  cfg.real_numerics = false;

  auto run_with_freeze = [&](std::size_t rebalance_interval) {
    sor::SorConfig c = cfg;
    c.rebalance_interval = rebalance_interval;
    sim::Engine engine;
    cluster::Platform platform(engine, spec, 5);
    platform.machine(1).set_trace(
        platform.machine(1).trace().with_freeze(0.0, 1e9, 0.05));
    return sor::run_distributed_sor(engine, platform, c).total_time;
  };
  const double t_static = run_with_freeze(0);
  const double t_adaptive = run_with_freeze(5);
  EXPECT_LT(t_adaptive, 0.5 * t_static);
}

// --- Service persistence ------------------------------------------------------

TEST(ServicePersistence, SaveLoadRoundTrip) {
  nws::Service a;
  for (int i = 0; i < 60; ++i) {
    a.observe("cpu/x", 0.4 + 0.001 * i);
    a.observe("net/ethernet", 0.5);
  }
  const std::string path = "/tmp/sspred_service_test.csv";
  a.save_csv(path);

  nws::Service b;
  b.load_csv(path);
  EXPECT_EQ(b.history_size("cpu/x"), 60u);
  EXPECT_EQ(b.history_size("net/ethernet"), 60u);
  EXPECT_EQ(b.resources().size(), 2u);
  // Forecasts agree after the round trip.
  EXPECT_NEAR(b.forecast("cpu/x").value, a.forecast("cpu/x").value, 1e-9);
  std::filesystem::remove(path);
}

TEST(ServicePersistence, LoadRejectsBadHeader) {
  const std::string path = "/tmp/sspred_service_bad.csv";
  {
    std::ofstream out(path);
    out << "nope\n";
  }
  nws::Service s;
  EXPECT_THROW(s.load_csv(path), support::Error);
  std::filesystem::remove(path);
}

// --- Expression operator sugar ----------------------------------------------

TEST(ExprSugar, OperatorsMatchNamedBuilders) {
  model::Environment env;
  env.bind("a", stoch::StochasticValue(6.0, 1.0));
  env.bind("b", stoch::StochasticValue(2.0, 0.2));
  const auto sugar =
      (model::param("a") + model::param("b")) / model::param("b");
  const auto named = model::quotient(
      model::add(model::param("a"), model::param("b")), model::param("b"));
  EXPECT_EQ(sugar->evaluate(env), named->evaluate(env));
  EXPECT_DOUBLE_EQ(sugar->evaluate_point(env), 4.0);

  const auto product = model::param("a") * model::param("b");
  EXPECT_DOUBLE_EQ(product->evaluate_point(env), 12.0);
}

}  // namespace
}  // namespace sspred
