// Unit tests for the discrete-event engine, coroutine processes, tasks and
// synchronization primitives.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "support/error.hpp"

namespace sspred::sim {
namespace {

TEST(Engine, EventsRunInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_at(3.0, [&] { order.push_back(3); });
  eng.schedule_at(1.0, [&] { order.push_back(1); });
  eng.schedule_at(2.0, [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(eng.now(), 3.0);
  EXPECT_EQ(eng.events_processed(), 3u);
}

TEST(Engine, SameTimeEventsRunFifo) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    eng.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, CancelSuppressesEvent) {
  Engine eng;
  bool fired = false;
  const EventId id = eng.schedule_at(1.0, [&] { fired = true; });
  eng.cancel(id);
  eng.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(eng.events_processed(), 0u);
}

TEST(Engine, CancelUnknownIdIsNoop) {
  Engine eng;
  eng.cancel(42);
  eng.run();
}

TEST(Engine, RunUntilStopsAtHorizon) {
  Engine eng;
  std::vector<double> fired;
  eng.schedule_at(1.0, [&] { fired.push_back(1.0); });
  eng.schedule_at(5.0, [&] { fired.push_back(5.0); });
  eng.run_until(3.0);
  EXPECT_EQ(fired, std::vector<double>{1.0});
  EXPECT_DOUBLE_EQ(eng.now(), 3.0);
  eng.run();
  EXPECT_EQ(fired.size(), 2u);
}

TEST(Engine, SchedulingInPastThrows) {
  Engine eng;
  eng.schedule_at(2.0, [] {});
  eng.run();
  EXPECT_THROW(eng.schedule_at(1.0, [] {}), support::Error);
  EXPECT_THROW(eng.schedule_in(-1.0, [] {}), support::Error);
}

TEST(Engine, EventsScheduledDuringRunExecute) {
  Engine eng;
  int count = 0;
  eng.schedule_at(1.0, [&] {
    ++count;
    eng.schedule_in(1.0, [&] { ++count; });
  });
  eng.run();
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(eng.now(), 2.0);
}

Process delayer(Engine& eng, std::vector<double>& log, double dt, int reps) {
  for (int i = 0; i < reps; ++i) {
    co_await eng.delay(dt);
    log.push_back(eng.now());
  }
}

TEST(Process, DelayAdvancesVirtualTime) {
  Engine eng;
  std::vector<double> log;
  eng.spawn(delayer(eng, log, 1.5, 3));
  eng.run();
  EXPECT_EQ(log, (std::vector<double>{1.5, 3.0, 4.5}));
}

TEST(Process, MultipleProcessesInterleave) {
  Engine eng;
  std::vector<double> a_log;
  std::vector<double> b_log;
  eng.spawn(delayer(eng, a_log, 2.0, 2));
  eng.spawn(delayer(eng, b_log, 3.0, 2));
  eng.run();
  EXPECT_EQ(a_log, (std::vector<double>{2.0, 4.0}));
  EXPECT_EQ(b_log, (std::vector<double>{3.0, 6.0}));
}

Process joiner_child(Engine& eng) { co_await eng.delay(5.0); }

TEST(Process, UntilAwaitsAbsoluteTime) {
  Engine eng;
  std::vector<double> log;
  eng.spawn([](Engine& e, std::vector<double>& out) -> Process {
    co_await e.until(4.0);
    out.push_back(e.now());
    co_await e.until(2.0);  // already past: no-op
    out.push_back(e.now());
  }(eng, log));
  eng.run();
  EXPECT_EQ(log, (std::vector<double>{4.0, 4.0}));
}

TEST(Trigger, NotifyAllWakesEveryWaiter) {
  Engine eng;
  Trigger trig(eng);
  int woken = 0;
  auto waiter = [](Trigger& t, int& count) -> Process {
    co_await t.wait();
    ++count;
  };
  eng.spawn(waiter(trig, woken));
  eng.spawn(waiter(trig, woken));
  eng.schedule_at(1.0, [&] { trig.notify_all(); });
  eng.run();
  EXPECT_EQ(woken, 2);
}

TEST(Trigger, NotifyOneWakesOldestOnly) {
  Engine eng;
  Trigger trig(eng);
  std::vector<int> woken;
  auto waiter = [](Trigger& t, std::vector<int>& out, int id) -> Process {
    co_await t.wait();
    out.push_back(id);
  };
  eng.spawn(waiter(trig, woken, 1));
  eng.spawn(waiter(trig, woken, 2));
  eng.schedule_at(1.0, [&] { trig.notify_one(); });
  eng.run();
  EXPECT_EQ(woken, std::vector<int>{1});
  EXPECT_EQ(trig.waiting(), 1u);
}

TEST(Semaphore, LimitsConcurrency) {
  Engine eng;
  Semaphore sem(eng, 1);
  std::vector<std::string> log;
  auto worker = [](Engine& e, Semaphore& s, std::vector<std::string>& out,
                   std::string name) -> Process {
    co_await s.acquire();
    out.push_back(name + ":in@" + std::to_string(static_cast<int>(e.now())));
    co_await e.delay(2.0);
    out.push_back(name + ":out@" + std::to_string(static_cast<int>(e.now())));
    s.release();
  };
  eng.spawn(worker(eng, sem, log, "a"));
  eng.spawn(worker(eng, sem, log, "b"));
  eng.run();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0], "a:in@0");
  EXPECT_EQ(log[1], "a:out@2");
  EXPECT_EQ(log[2], "b:in@2");
  EXPECT_EQ(log[3], "b:out@4");
}

TEST(Semaphore, CountingSemantics) {
  Engine eng;
  Semaphore sem(eng, 2);
  EXPECT_EQ(sem.available(), 2u);
  sem.release();
  EXPECT_EQ(sem.available(), 3u);
}

TEST(Channel, DeliversFifo) {
  Engine eng;
  Channel<int> ch(eng);
  std::vector<int> got;
  eng.spawn([](Channel<int>& c, std::vector<int>& out) -> Process {
    for (int i = 0; i < 3; ++i) out.push_back(co_await c.recv());
  }(ch, got));
  eng.schedule_at(1.0, [&] {
    ch.send(10);
    ch.send(20);
    ch.send(30);
  });
  eng.run();
  EXPECT_EQ(got, (std::vector<int>{10, 20, 30}));
}

TEST(Channel, ReceiverBlocksUntilSend) {
  Engine eng;
  Channel<int> ch(eng);
  double recv_time = -1.0;
  eng.spawn([](Engine& e, Channel<int>& c, double& t) -> Process {
    (void)co_await c.recv();
    t = e.now();
  }(eng, ch, recv_time));
  eng.schedule_at(7.0, [&] { ch.send(1); });
  eng.run();
  EXPECT_DOUBLE_EQ(recv_time, 7.0);
}

TEST(Channel, BufferedSendsDoNotBlock) {
  Engine eng;
  Channel<int> ch(eng);
  ch.send(1);
  ch.send(2);
  EXPECT_EQ(ch.size(), 2u);
  int sum = 0;
  eng.spawn([](Channel<int>& c, int& s) -> Process {
    s += co_await c.recv();
    s += co_await c.recv();
  }(ch, sum));
  eng.run();
  EXPECT_EQ(sum, 3);
}

Task<int> add_later(Engine& eng, int a, int b) {
  co_await eng.delay(1.0);
  co_return a + b;
}

Task<int> twice(Engine& eng, int x) {
  const int first = co_await add_later(eng, x, x);
  const int second = co_await add_later(eng, first, first);
  co_return second;
}

TEST(Task, ComposesAndReturnsValues) {
  Engine eng;
  int result = 0;
  eng.spawn([](Engine& e, int& out) -> Process {
    out = co_await twice(e, 3);
  }(eng, result));
  eng.run();
  EXPECT_EQ(result, 12);  // (3+3) then (6+6)
  EXPECT_DOUBLE_EQ(eng.now(), 2.0);
}

Task<> void_task(Engine& eng, int& counter) {
  co_await eng.delay(0.5);
  ++counter;
}

TEST(Task, VoidSpecializationWorks) {
  Engine eng;
  int counter = 0;
  eng.spawn([](Engine& e, int& c) -> Process {
    co_await void_task(e, c);
    co_await void_task(e, c);
  }(eng, counter));
  eng.run();
  EXPECT_EQ(counter, 2);
  EXPECT_DOUBLE_EQ(eng.now(), 1.0);
}

TEST(Process, JoinWaitsForCompletion) {
  Engine eng;
  double joined_at = -1.0;
  // The child stays owned by the test scope (so join()'s handle outlives
  // the joiner); it is started manually instead of via spawn.
  const Process child = joiner_child(eng);
  eng.schedule_at(0.0, [h = child.handle()] { h.resume(); });
  eng.spawn([](Engine& e, const Process& c, double& out) -> Process {
    co_await c.join();
    out = e.now();
  }(eng, child, joined_at));
  eng.run();
  EXPECT_TRUE(child.done());
  EXPECT_DOUBLE_EQ(joined_at, 5.0);
}

TEST(Process, JoinOnFinishedProcessReturnsImmediately) {
  Engine eng;
  const Process child = joiner_child(eng);
  eng.schedule_at(0.0, [h = child.handle()] { h.resume(); });
  eng.run();  // child finishes at t=5
  ASSERT_TRUE(child.done());
  double joined_at = -1.0;
  eng.spawn([](Engine& e, const Process& c, double& out) -> Process {
    co_await c.join();
    out = e.now();
  }(eng, child, joined_at));
  eng.run();
  EXPECT_DOUBLE_EQ(joined_at, 5.0);
}

TEST(Engine, ExceptionInProcessPropagatesOutOfRun) {
  Engine eng;
  eng.spawn([](Engine& e) -> Process {
    co_await e.delay(1.0);
    SSPRED_REQUIRE(false, "boom");
  }(eng));
  EXPECT_THROW(eng.run(), support::Error);
}

TEST(Engine, DeterministicEventCounts) {
  auto run_once = [] {
    Engine eng;
    std::vector<double> log;
    eng.spawn(delayer(eng, log, 0.25, 40));
    eng.spawn(delayer(eng, log, 0.4, 25));
    eng.run();
    return log;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace sspred::sim
