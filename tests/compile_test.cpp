// Tests for the flat slot-indexed IR (model/ir.hpp) and the tree->IR
// compiler (model/compile.hpp).
//
// The core of the file is a differential property test: random expression
// DAGs — nested sums/products/quotients/extremes/iterates with shared
// subtrees and repeated parameters — must evaluate identically (to 1e-12
// relative) through the tree walkers and the compiled program, for all
// three evaluation modes. Monte-Carlo comparisons seed two identical RNGs,
// which only agree if the compiled sample walk consumes the stream in
// exactly the tree's order (per-occurrence draws, per-slot caching, fresh
// draws inside unrelated iterations).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "model/compile.hpp"
#include "model/expr.hpp"
#include "model/ir.hpp"
#include "predict/sor_model.hpp"
#include "stoch/stochastic_value.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace sspred::model {
namespace {

using stoch::Dependence;
using stoch::ExtremePolicy;
using stoch::StochasticValue;

constexpr double kRelTol = 1e-12;

void expect_close(double a, double b, const std::string& what) {
  const double scale = std::max({1.0, std::abs(a), std::abs(b)});
  EXPECT_LE(std::abs(a - b), kRelTol * scale) << what << ": " << a
                                              << " vs " << b;
}

void expect_sv_close(const StochasticValue& a, const StochasticValue& b,
                     const std::string& what) {
  expect_close(a.mean(), b.mean(), what + " mean");
  expect_close(a.halfwidth(), b.halfwidth(), what + " halfwidth");
}

/// Monte-Carlo through the tree walker only (the oracle): model::
/// monte_carlo() itself routes through the compiled program now.
StochasticValue tree_monte_carlo(const Expr& expr, const Environment& env,
                                 support::Rng& rng, std::size_t trials) {
  std::vector<double> outcomes;
  outcomes.reserve(trials);
  SampleCache cache;
  for (std::size_t t = 0; t < trials; ++t) {
    cache.clear();
    outcomes.push_back(expr.sample(env, cache, rng));
  }
  return StochasticValue::from_sample(outcomes);
}

// ---------------------------------------------------------------------------
// Compiler structure

TEST(Compile, FlattensToPostOrderWithRootLast) {
  const ExprPtr e =
      add(quotient(constant(StochasticValue(6.0, 0.6)), param("x"),
                   Dependence::kUnrelated),
          param("y"), Dependence::kRelated);
  const ir::Program prog = compile(*e);

  // Quotients emit the denominator's region first (sample-order parity
  // with DivExpr::sample): x, const, div, y, sum(root).
  ASSERT_EQ(prog.node_count(), 5u);
  EXPECT_EQ(prog.node(0).op, ir::OpCode::kParam);
  EXPECT_EQ(prog.node(1).op, ir::OpCode::kConst);
  EXPECT_EQ(prog.node(2).op, ir::OpCode::kDiv);
  EXPECT_EQ(prog.node(4).op, ir::OpCode::kSum);
  EXPECT_EQ(prog.slot_count(), 2u);
  EXPECT_TRUE(prog.has_slot("x"));
  EXPECT_TRUE(prog.has_slot("y"));
}

TEST(Compile, RepeatedParameterSharesOneSlot) {
  const ExprPtr x = param("x");
  const ExprPtr e = mul(add(x, x, Dependence::kRelated), param("x"),
                        Dependence::kUnrelated);
  const ir::Program prog = compile(*e);
  EXPECT_EQ(prog.slot_count(), 1u);
  // The shared ExprPtr `x` lowers once and its second occurrence becomes a
  // kRef; the separately authored param("x") emits its own kParam node.
  // Every kParam reads the single interned slot.
  std::size_t param_nodes = 0;
  std::size_t ref_nodes = 0;
  for (std::size_t i = 0; i < prog.node_count(); ++i) {
    if (prog.node(i).op == ir::OpCode::kParam) {
      ++param_nodes;
      EXPECT_EQ(prog.node(i).payload, prog.slot("x"));
    } else if (prog.node(i).op == ir::OpCode::kRef) {
      ++ref_nodes;
      EXPECT_EQ(prog.node(prog.node(i).payload).op, ir::OpCode::kParam);
    }
  }
  EXPECT_EQ(param_nodes, 2u);
  EXPECT_EQ(ref_nodes, 1u);
}

TEST(Compile, BaseProgramSeedsSharedSlotTable) {
  const ExprPtr whole = add(param("a"), param("b"));
  const ExprPtr part = param("b");
  const ir::Program prog = compile(*whole);
  const ir::Program comp = compile(*part, prog);
  // The component agrees with the base on slot ids, so one environment
  // shaped for the base drives both.
  EXPECT_EQ(comp.slot("b"), prog.slot("b"));
  EXPECT_EQ(comp.slot_count(), prog.slot_count());

  ir::SlotEnvironment env = prog.make_environment();
  env.bind(prog.slot("a"), StochasticValue(1.0));
  env.bind(prog.slot("b"), StochasticValue(2.0, 0.2));
  EXPECT_DOUBLE_EQ(comp.evaluate(env).mean(), 2.0);
  EXPECT_DOUBLE_EQ(prog.evaluate(env).mean(), 3.0);
}

TEST(Compile, UnknownSlotNameThrowsListingParameters) {
  const ir::Program prog = compile(*add(param("alpha"), param("beta")));
  try {
    (void)prog.slot("gamma");
    FAIL() << "expected Error";
  } catch (const support::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("gamma"), std::string::npos);
    EXPECT_NE(what.find("alpha"), std::string::npos);
    EXPECT_NE(what.find("beta"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// SlotEnvironment / Environment diagnostics (satellite: lookup errors name
// what IS bound, not just what is missing)

TEST(SlotEnvironment, UnboundLookupListsBoundSlots) {
  const ir::Program prog = compile(*add(param("alpha"), param("beta")));
  ir::SlotEnvironment env = prog.make_environment();
  env.bind(prog.slot("alpha"), StochasticValue(1.0));
  try {
    (void)prog.evaluate(env);
    FAIL() << "expected Error";
  } catch (const support::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("beta"), std::string::npos);   // the culprit
    EXPECT_NE(what.find("alpha"), std::string::npos);  // what is bound
  }
}

TEST(Environment, UnboundLookupListsBoundNames) {
  Environment env;
  env.bind("alpha", StochasticValue(1.0));
  env.bind("beta", StochasticValue(2.0));
  try {
    (void)env.lookup("gamma");
    FAIL() << "expected Error";
  } catch (const support::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("gamma"), std::string::npos);
    EXPECT_NE(what.find("alpha"), std::string::npos);
    EXPECT_NE(what.find("beta"), std::string::npos);
  }
}

TEST(SlotEnvironment, EvaluateRejectsEnvironmentOfWrongShape) {
  const ir::Program two = compile(*add(param("a"), param("b")));
  const ir::Program one = compile(*param("a"));
  ir::SlotEnvironment env = one.make_environment();
  env.bind(one.slot("a"), StochasticValue(1.0));
  EXPECT_THROW((void)two.evaluate(env), support::Error);
}

TEST(SampleTrials, RequiresAtLeastTwoTrials) {
  const ir::Program prog = compile(*param("a"));
  ir::SlotEnvironment env = prog.make_environment();
  env.bind(prog.slot("a"), StochasticValue(1.0, 0.1));
  support::Rng rng(7);
  EXPECT_THROW((void)prog.sample_trials(env, rng, 1), support::Error);
}

// ---------------------------------------------------------------------------
// Hand-picked equivalences (exact, not just 1e-12: same operations in the
// same order must produce bit-identical doubles)

TEST(Compiled, MatchesTreeOnIterateBothRegimes) {
  for (const auto dep : {Dependence::kRelated, Dependence::kUnrelated}) {
    const ExprPtr body = add(quotient(constant(StochasticValue(3.0, 0.3)),
                                      param("load"), Dependence::kUnrelated),
                             param("load"), Dependence::kRelated);
    const ExprPtr e = iterate(body, 5, dep);
    Environment env;
    env.bind("load", StochasticValue(0.8, 0.1));

    const ir::Program prog = compile(*e);
    const ir::SlotEnvironment slots = bind_environment(prog, env);

    EXPECT_DOUBLE_EQ(prog.evaluate(slots).mean(), e->evaluate(env).mean());
    EXPECT_DOUBLE_EQ(prog.evaluate(slots).halfwidth(),
                     e->evaluate(env).halfwidth());
    EXPECT_DOUBLE_EQ(prog.evaluate_point(slots), e->evaluate_point(env));

    // Unrelated iterations re-draw parameters each pass; related ones
    // reuse the trial's draw. Either way the stream must match the tree.
    support::Rng tree_rng(42);
    support::Rng ir_rng(42);
    ir::EvalWorkspace ws;
    SampleCache cache;
    for (int t = 0; t < 50; ++t) {
      cache.clear();
      EXPECT_DOUBLE_EQ(prog.sample(slots, ir_rng, ws),
                       e->sample(env, cache, tree_rng));
    }
  }
}

TEST(Compiled, NestedUnrelatedIteratesMatchTreeSampling) {
  // An unrelated iterate whose body contains another unrelated iterate:
  // the inner body re-draws per inner pass, the outer per outer pass, and
  // the enclosing trial's cache must survive both.
  const ExprPtr inner = iterate(param("x"), 3, Dependence::kUnrelated);
  const ExprPtr body = add(inner, param("y"), Dependence::kUnrelated);
  const ExprPtr e =
      add(iterate(body, 4, Dependence::kUnrelated), param("x"),
          Dependence::kRelated);
  Environment env;
  env.bind("x", StochasticValue(1.0, 0.2));
  env.bind("y", StochasticValue(2.0, 0.3));

  const ir::Program prog = compile(*e);
  const ir::SlotEnvironment slots = bind_environment(prog, env);
  support::Rng tree_rng(11);
  support::Rng ir_rng(11);
  ir::EvalWorkspace ws;
  SampleCache cache;
  for (int t = 0; t < 50; ++t) {
    cache.clear();
    EXPECT_DOUBLE_EQ(prog.sample(slots, ir_rng, ws),
                     e->sample(env, cache, tree_rng));
  }
}

TEST(Compiled, SharedSubtreeDrawsPerOccurrenceLikeTheTree) {
  // The same ExprPtr reached twice is sampled twice by the tree walker
  // (only named parameters cache); compilation must preserve that.
  const ExprPtr noisy = constant(StochasticValue(5.0, 1.0));
  const ExprPtr e = add(noisy, noisy, Dependence::kUnrelated);
  const ir::Program prog = compile(*e);
  const Environment env;
  const ir::SlotEnvironment slots = bind_environment(prog, env);

  support::Rng tree_rng(3);
  support::Rng ir_rng(3);
  ir::EvalWorkspace ws;
  SampleCache cache;
  for (int t = 0; t < 20; ++t) {
    cache.clear();
    const double a = prog.sample(slots, ir_rng, ws);
    const double b = e->sample(env, cache, tree_rng);
    EXPECT_DOUBLE_EQ(a, b);
  }
}

TEST(Compiled, SharedIterateRefKeepsIterateSaveRestoreIntact) {
  // Regression: a shared unrelated iterate re-executed through a reuse
  // node nests the iterate's slot save/restore inside the ref's region
  // save/restore. The two must use separate buffers — an early version
  // indexed the iterate's drawn-flag saves off the ref-extended value
  // buffer, corrupting the restored cache state and desyncing the stream.
  const ExprPtr it = iterate(param("p1"), 2, Dependence::kUnrelated);
  const ExprPtr e = sum({it, it, param("p1")}, Dependence::kUnrelated);
  Environment env;
  env.bind("p1", StochasticValue(1.0, 0.2));

  const ir::Program prog = compile(*e);
  const ir::SlotEnvironment slots = bind_environment(prog, env);
  support::Rng tree_rng(5);
  support::Rng ir_rng(5);
  ir::EvalWorkspace ws;
  SampleCache cache;
  for (int t = 0; t < 50; ++t) {
    cache.clear();
    EXPECT_DOUBLE_EQ(prog.sample(slots, ir_rng, ws),
                     e->sample(env, cache, tree_rng));
  }
}

TEST(Compiled, MonteCarloEntryPointsAgree) {
  const ExprPtr e = iterate(
      add(quotient(constant(StochasticValue(2.0, 0.2)), param("load"),
                   Dependence::kUnrelated),
          constant(StochasticValue(0.5, 0.05)), Dependence::kUnrelated),
      6, Dependence::kRelated);
  Environment env;
  env.bind("load", StochasticValue(0.7, 0.1));

  const ir::Program prog = compile(*e);
  const ir::SlotEnvironment slots = bind_environment(prog, env);

  support::Rng r1(99);
  support::Rng r2(99);
  support::Rng r3(99);
  support::Rng r4(99);
  // The expr entry point runs the default blocked order, so its oracle is
  // the program's blocked stream; the scalar-compat order remains
  // bit-exact against the tree walker.
  const StochasticValue via_expr_api = monte_carlo(*e, env, r1, 500);
  const StochasticValue via_program =
      monte_carlo(prog, slots, r2, 500, ir::SampleOrder::kScalarCompat);
  const StochasticValue via_tree = tree_monte_carlo(*e, env, r3, 500);
  const StochasticValue via_blocked = prog.sample_trials(slots, r4, 500);
  expect_sv_close(via_expr_api, via_blocked, "monte_carlo(expr) vs blocked");
  expect_sv_close(via_program, via_tree, "monte_carlo(program) vs tree");
}

TEST(Compiled, SorModelServesIdenticalPredictions) {
  const auto spec = cluster::platform1();
  sor::SorConfig cfg;
  cfg.n = 400;
  cfg.iterations = 15;
  const predict::SorStructuralModel model(spec, cfg);
  std::vector<StochasticValue> loads = {
      {0.48, 0.05}, {0.92, 0.03}, {0.92, 0.03}, {0.92, 0.03}};
  const StochasticValue bw(0.525, 0.06);

  const Environment env = model.make_env(loads, bw);
  const ir::SlotEnvironment slots = model.make_slot_env(loads, bw);

  // Compiled prediction == tree evaluation of the authored expression.
  EXPECT_DOUBLE_EQ(model.predict(slots).mean(),
                   model.expr()->evaluate(env).mean());
  EXPECT_DOUBLE_EQ(model.predict(slots).halfwidth(),
                   model.expr()->evaluate(env).halfwidth());
  EXPECT_DOUBLE_EQ(model.predict_point(slots),
                   model.expr()->evaluate_point(env));
  // The two environment forms agree with each other.
  EXPECT_DOUBLE_EQ(model.predict(env).mean(), model.predict(slots).mean());
}

// ---------------------------------------------------------------------------
// Differential property test over random DAGs

struct Gen {
  explicit Gen(std::uint64_t seed) : rng(seed) {}

  support::Rng rng;
  std::vector<std::string> params = {"p0", "p1", "p2", "p3"};
  std::vector<ExprPtr> pool;  ///< candidates for shared-subtree reuse

  Dependence dep() {
    return rng.uniform() < 0.5 ? Dependence::kRelated
                               : Dependence::kUnrelated;
  }

  /// A leaf or a leaf-like safe denominator: a parameter (bound well away
  /// from zero) or a tight positive constant.
  ExprPtr leaf() {
    if (rng.uniform() < 0.5) {
      return param(params[rng.uniform_int(params.size())]);
    }
    const double mean = rng.uniform(0.5, 2.0);
    return constant(StochasticValue(mean, rng.uniform(0.0, 0.2 * mean)));
  }

  ExprPtr expr(int depth) {
    // Shared subtree: reuse an already-built node (DAG edge) sometimes.
    if (!pool.empty() && rng.uniform() < 0.2) {
      return pool[rng.uniform_int(pool.size())];
    }
    ExprPtr made;
    if (depth == 0 || rng.uniform() < 0.2) {
      made = leaf();
    } else {
      switch (rng.uniform_int(5)) {
        case 0: {
          std::vector<ExprPtr> terms;
          const std::size_t k = 2 + rng.uniform_int(3);
          for (std::size_t i = 0; i < k; ++i) {
            terms.push_back(expr(depth - 1));
          }
          made = sum(std::move(terms), dep());
          break;
        }
        case 1: {
          std::vector<ExprPtr> factors;
          const std::size_t k = 2 + rng.uniform_int(2);
          for (std::size_t i = 0; i < k; ++i) {
            factors.push_back(expr(depth - 1));
          }
          made = prod(std::move(factors), dep());
          break;
        }
        case 2:
          // Denominators stay leaves: parameters and constants are bound
          // well away from zero, which keeps the div/inverse
          // range-excludes-zero precondition satisfiable for arbitrary
          // nesting (a deep product's range may legally straddle zero).
          made = quotient(expr(depth - 1), leaf(), dep());
          break;
        case 3: {
          std::vector<ExprPtr> items;
          const std::size_t k = 2 + rng.uniform_int(3);
          for (std::size_t i = 0; i < k; ++i) {
            items.push_back(expr(depth - 1));
          }
          const auto policy = rng.uniform() < 0.5
                                  ? ExtremePolicy::kLargestMean
                                  : ExtremePolicy::kLargestUpper;
          made = rng.uniform() < 0.5 ? vmax(std::move(items), policy)
                                     : vmin(std::move(items), policy);
          break;
        }
        default:
          made = iterate(expr(depth - 1), 1 + rng.uniform_int(4), dep());
          break;
      }
    }
    pool.push_back(made);
    return made;
  }
};

TEST(Differential, RandomDagsAgreeAcrossAllThreeModes) {
  constexpr int kCases = 40;
  constexpr std::size_t kTrials = 200;
  for (int c = 0; c < kCases; ++c) {
    Gen gen(1000 + static_cast<std::uint64_t>(c));
    const ExprPtr e = gen.expr(4);
    const std::string label = "case " + std::to_string(c);

    Environment env;
    for (const auto& name : gen.params) {
      const double mean = gen.rng.uniform(0.5, 2.0);
      env.bind(name, StochasticValue(mean, gen.rng.uniform(0.0, 0.2 * mean)));
    }

    const ir::Program prog = compile(*e);
    const ir::SlotEnvironment slots = bind_environment(prog, env);

    expect_sv_close(prog.evaluate(slots), e->evaluate(env),
                    label + " evaluate");
    expect_close(prog.evaluate_point(slots), e->evaluate_point(env),
                 label + " evaluate_point");

    support::Rng tree_rng(7000 + static_cast<std::uint64_t>(c));
    support::Rng ir_rng(7000 + static_cast<std::uint64_t>(c));
    const StochasticValue tree_mc =
        tree_monte_carlo(*e, env, tree_rng, kTrials);
    const StochasticValue ir_mc = prog.sample_trials(
        slots, ir_rng, kTrials, ir::SampleOrder::kScalarCompat);
    expect_sv_close(ir_mc, tree_mc, label + " monte_carlo");
  }
}

}  // namespace
}  // namespace sspred::model
