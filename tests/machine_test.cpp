// Unit tests for load traces and the machine model.
#include <gtest/gtest.h>

#include <vector>

#include "machine/load_trace.hpp"
#include "machine/machine.hpp"
#include "support/error.hpp"

namespace sspred::machine {
namespace {

TEST(LoadTrace, AtReturnsStepValues) {
  const LoadTrace t(1.0, {0.5, 0.25, 1.0});
  EXPECT_DOUBLE_EQ(t.at(0.0), 0.5);
  EXPECT_DOUBLE_EQ(t.at(0.99), 0.5);
  EXPECT_DOUBLE_EQ(t.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(t.at(2.5), 1.0);
  EXPECT_DOUBLE_EQ(t.at(100.0), 1.0);  // last value persists
  EXPECT_DOUBLE_EQ(t.at(-5.0), 0.5);   // before start: first value
}

TEST(LoadTrace, ValidationRejectsBadInput) {
  EXPECT_THROW(LoadTrace(0.0, {0.5}), support::Error);
  EXPECT_THROW(LoadTrace(1.0, {}), support::Error);
  EXPECT_THROW(LoadTrace(1.0, {0.0}), support::Error);   // must be > 0
  EXPECT_THROW(LoadTrace(1.0, {1.5}), support::Error);   // must be <= 1
}

TEST(LoadTrace, AverageIntegratesExactly) {
  const LoadTrace t(1.0, {0.5, 1.0});
  EXPECT_DOUBLE_EQ(t.average(0.0, 2.0), 0.75);
  EXPECT_DOUBLE_EQ(t.average(0.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(t.average(0.5, 1.5), 0.75);
  EXPECT_DOUBLE_EQ(t.average(2.0, 4.0), 1.0);  // beyond end
}

TEST(LoadTrace, FinishTimeOnConstantTrace) {
  const LoadTrace t = LoadTrace::constant(0.5);
  // 2 dedicated-seconds at 50% availability takes 4 wall seconds.
  EXPECT_DOUBLE_EQ(t.finish_time(0.0, 2.0), 4.0);
  EXPECT_DOUBLE_EQ(t.finish_time(10.0, 1.0), 12.0);
  EXPECT_DOUBLE_EQ(t.finish_time(3.0, 0.0), 3.0);
}

TEST(LoadTrace, FinishTimeAcrossSteps) {
  const LoadTrace t(1.0, {1.0, 0.5, 0.25});
  // 1 dedicated-second: done exactly at t=1.
  EXPECT_DOUBLE_EQ(t.finish_time(0.0, 1.0), 1.0);
  // 1.5 dedicated-seconds: 1 in [0,1), then 0.5 at rate 0.5 -> 1 more sec.
  EXPECT_DOUBLE_EQ(t.finish_time(0.0, 1.5), 2.0);
  // 2 dedicated-seconds: + 0.5 work at rate 0.25 -> 2 more sec after t=2.
  EXPECT_DOUBLE_EQ(t.finish_time(0.0, 2.0), 4.0);
}

TEST(LoadTrace, FinishTimeStartsMidSegment) {
  const LoadTrace t(1.0, {1.0, 0.5});
  // Start at 0.5: half a dedicated-second available before the step.
  EXPECT_DOUBLE_EQ(t.finish_time(0.5, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(t.finish_time(0.5, 1.0), 2.0);
}

TEST(LoadTrace, FinishTimeConsistentWithAverage) {
  const LoadTrace t(1.0, {0.9, 0.3, 0.6, 0.8, 0.2, 0.95});
  const double start = 0.7;
  const double work = 2.0;
  const double finish = t.finish_time(start, work);
  // The average availability over [start, finish] times elapsed == work.
  EXPECT_NEAR(t.average(start, finish) * (finish - start), work, 1e-9);
}

TEST(LoadTrace, GenerateClampsIntoUnitInterval) {
  stats::ModalProcessSpec spec;
  stats::ModeState m;
  m.shape.center = 0.5;
  m.shape.sd = 2.0;  // wild spread to force clamping
  m.mean_dwell = 10.0;
  spec.modes.push_back(m);
  spec.lo = 0.0;
  spec.hi = 1.0;
  const LoadTrace t = LoadTrace::generate(spec, 1'000, 1.0, 42);
  EXPECT_EQ(t.samples().size(), 1'000u);
  for (double s : t.samples()) {
    EXPECT_GT(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(LoadTrace, GenerateDeterministicPerSeed) {
  stats::ModalProcessSpec spec;
  stats::ModeState m;
  m.shape.center = 0.5;
  m.shape.sd = 0.05;
  m.mean_dwell = 50.0;
  spec.modes.push_back(m);
  spec.lo = 0.0;
  spec.hi = 1.0;
  const LoadTrace a = LoadTrace::generate(spec, 100, 1.0, 7);
  const LoadTrace b = LoadTrace::generate(spec, 100, 1.0, 7);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.samples()[i], b.samples()[i]);
  }
}

TEST(MachineSpecs, SpeedOrderingMatchesHardwareEra) {
  EXPECT_GT(sparc2_spec().bm_seconds_per_element,
            sparc5_spec().bm_seconds_per_element);
  EXPECT_GT(sparc5_spec().bm_seconds_per_element,
            sparc10_spec().bm_seconds_per_element);
  EXPECT_GT(sparc10_spec().bm_seconds_per_element,
            ultrasparc_spec().bm_seconds_per_element);
}

TEST(Machine, ElementWorkUsesBenchmarkTime) {
  Machine m(sparc10_spec(), LoadTrace::constant(1.0));
  EXPECT_DOUBLE_EQ(m.element_work(1e6),
                   1e6 * sparc10_spec().bm_seconds_per_element);
}

TEST(Machine, FinishTimeDelegatesToTrace) {
  Machine m(sparc10_spec(), LoadTrace::constant(0.5));
  EXPECT_DOUBLE_EQ(m.finish_time(0.0, 3.0), 6.0);
  EXPECT_DOUBLE_EQ(m.availability(0.0), 0.5);
}

TEST(Machine, SetTraceSwapsAvailability) {
  Machine m(sparc10_spec(), LoadTrace::constant(1.0));
  m.set_trace(LoadTrace::constant(0.25));
  EXPECT_DOUBLE_EQ(m.finish_time(0.0, 1.0), 4.0);
}

TEST(Machine, InvalidSpecRejected) {
  MachineSpec bad = sparc10_spec();
  bad.bm_seconds_per_element = 0.0;
  EXPECT_THROW(Machine(bad, LoadTrace::constant(1.0)), support::Error);
}

}  // namespace
}  // namespace sspred::machine
