// Unit tests for prediction scoring (capture fraction, range error,
// point-baseline error).
#include <gtest/gtest.h>

#include <vector>

#include "stoch/metrics.hpp"
#include "support/error.hpp"

namespace sspred::stoch {
namespace {

TEST(RelativeError, Basics) {
  EXPECT_DOUBLE_EQ(relative_error(11.0, 10.0), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(9.0, 10.0), 0.1);
  EXPECT_THROW((void)relative_error(1.0, 0.0), support::Error);
}

TEST(Score, AllCaptured) {
  const std::vector<StochasticValue> preds{{10.0, 2.0}, {20.0, 5.0}};
  const std::vector<double> actuals{11.0, 18.0};
  const PredictionScore s = score_predictions(preds, actuals);
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.capture_fraction, 1.0);
  EXPECT_DOUBLE_EQ(s.max_range_error, 0.0);
  EXPECT_DOUBLE_EQ(s.mean_range_error, 0.0);
  EXPECT_NEAR(s.max_mean_error, 2.0 / 18.0, 1e-12);
}

TEST(Score, PartialCapture) {
  const std::vector<StochasticValue> preds{{10.0, 1.0}, {10.0, 1.0}};
  const std::vector<double> actuals{10.5, 13.0};  // second is 2 beyond upper
  const PredictionScore s = score_predictions(preds, actuals);
  EXPECT_DOUBLE_EQ(s.capture_fraction, 0.5);
  EXPECT_NEAR(s.max_range_error, 2.0 / 13.0, 1e-12);
  EXPECT_NEAR(s.mean_range_error, 1.0 / 13.0, 1e-12);
}

TEST(Score, PointPredictionsScoreViaMeans) {
  const std::vector<StochasticValue> preds{StochasticValue(10.0)};
  const std::vector<double> actuals{12.0};
  const PredictionScore s = score_predictions(preds, actuals);
  EXPECT_DOUBLE_EQ(s.capture_fraction, 0.0);
  EXPECT_NEAR(s.max_mean_error, 2.0 / 12.0, 1e-12);
  EXPECT_NEAR(s.max_range_error, 2.0 / 12.0, 1e-12);
}

TEST(Score, MismatchedSizesThrow) {
  const std::vector<StochasticValue> preds{{1.0, 0.1}};
  const std::vector<double> actuals{1.0, 2.0};
  EXPECT_THROW((void)score_predictions(preds, actuals), support::Error);
}

TEST(Score, NonPositiveActualThrows) {
  const std::vector<StochasticValue> preds{{1.0, 0.1}};
  const std::vector<double> actuals{0.0};
  EXPECT_THROW((void)score_predictions(preds, actuals), support::Error);
}

TEST(Score, WiderIntervalsCaptureMore) {
  std::vector<double> actuals;
  for (int i = 0; i < 20; ++i) actuals.push_back(10.0 + 0.3 * i);
  std::vector<StochasticValue> narrow(20, StochasticValue(12.0, 1.0));
  std::vector<StochasticValue> wide(20, StochasticValue(12.0, 4.0));
  EXPECT_LT(score_predictions(narrow, actuals).capture_fraction,
            score_predictions(wide, actuals).capture_fraction);
  EXPECT_LE(score_predictions(wide, actuals).max_range_error,
            score_predictions(narrow, actuals).max_range_error);
}

}  // namespace
}  // namespace sspred::stoch
