// Tests for the layered serving stack's new layers (src/serve/):
// AdmissionQueue (lock-free bounded MPMC admission), ShardRouter
// (consistent-hash structure routing), and the sharded PredictionService
// — bit-exactness vs the unsharded service, per-reason rejection
// accounting, epoch pinning under concurrent publishes to all shards,
// shard-labeled metrics aggregation, observation routing, and program-
// cache consistency under model re-registration churn. The concurrency
// tests here run under ThreadSanitizer in CI.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "calib/ledger.hpp"
#include "cluster/platform.hpp"
#include "model/fingerprint.hpp"
#include "serve/admission.hpp"
#include "serve/router.hpp"
#include "serve/service.hpp"
#include "support/error.hpp"

namespace sspred::serve {
namespace {

ModelSpec family_spec(std::size_t n, std::size_t hosts = 2) {
  ModelSpec spec;
  spec.app = ModelSpec::App::kSor;
  spec.platform = cluster::dedicated_platform(hosts);
  spec.config.n = n;
  spec.config.iterations = 5;
  return spec;
}

std::vector<stoch::StochasticValue> loads_for(std::size_t hosts,
                                              double base = 0.8) {
  std::vector<stoch::StochasticValue> loads;
  for (std::size_t i = 0; i < hosts; ++i) {
    loads.push_back(stoch::StochasticValue(base + 0.05 * double(i), 0.1));
  }
  return loads;
}

PredictRequest stochastic_request(const std::string& id,
                                  std::vector<stoch::StochasticValue> loads) {
  PredictRequest request;
  request.model_id = id;
  request.loads = std::move(loads);
  return request;
}

// --- AdmissionQueue ----------------------------------------------------

TEST(AdmissionQueue, FifoAndExactCapacity) {
  AdmissionQueue<int> q(5);  // ring rounds up to 8; capacity stays 5
  EXPECT_EQ(q.capacity(), 5u);
  for (int i = 0; i < 5; ++i) {
    int v = i;
    EXPECT_EQ(q.try_push(v), AdmissionQueue<int>::Push::kOk);
  }
  int overflow = 99;
  EXPECT_EQ(q.try_push(overflow), AdmissionQueue<int>::Push::kFull);
  EXPECT_EQ(overflow, 99);  // rejected item untouched
  EXPECT_EQ(q.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    int v = -1;
    ASSERT_TRUE(q.try_pop(v));
    EXPECT_EQ(v, i);  // FIFO
  }
  int v = -1;
  EXPECT_FALSE(q.try_pop(v));
  EXPECT_EQ(q.size(), 0u);
}

TEST(AdmissionQueue, CloseShedsNewPushesButDrainsAdmitted) {
  AdmissionQueue<int> q(4);
  int a = 1, b = 2;
  ASSERT_EQ(q.try_push(a), AdmissionQueue<int>::Push::kOk);
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(q.try_push(b), AdmissionQueue<int>::Push::kClosed);
  int v = 0;
  ASSERT_TRUE(q.try_pop(v));  // admitted elements remain poppable
  EXPECT_EQ(v, 1);
}

// Multi-producer/multi-consumer stress: every pushed value is popped
// exactly once, none invented, capacity never exceeded (TSan target).
TEST(AdmissionQueue, MpmcStressDeliversEveryItemExactlyOnce) {
  constexpr std::size_t kCapacity = 64;
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 2000;
  AdmissionQueue<std::uint64_t> q(kCapacity);

  std::atomic<std::uint64_t> popped_sum{0};
  std::atomic<std::uint64_t> popped_count{0};
  std::atomic<std::uint64_t> pushed_sum{0};
  std::atomic<bool> done_producing{false};

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      std::uint64_t v = 0;
      for (;;) {
        if (q.try_pop(v)) {
          popped_sum.fetch_add(v);
          popped_count.fetch_add(1);
        } else if (done_producing.load()) {
          if (!q.try_pop(v)) break;  // confirmed empty after producers quit
          popped_sum.fetch_add(v);
          popped_count.fetch_add(1);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        // Unique value per (producer, i); retry full pushes so every
        // value is eventually admitted.
        std::uint64_t v =
            static_cast<std::uint64_t>(p) * kPerProducer + std::uint64_t(i) + 1;
        const std::uint64_t tagged = v;
        for (;;) {
          std::uint64_t item = tagged;
          if (q.try_push(item) == AdmissionQueue<std::uint64_t>::Push::kOk) {
            pushed_sum.fetch_add(tagged);
            break;
          }
          EXPECT_LE(q.size(), kCapacity);
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  done_producing.store(true);
  for (auto& t : consumers) t.join();

  EXPECT_EQ(popped_count.load(),
            std::uint64_t(kProducers) * std::uint64_t(kPerProducer));
  EXPECT_EQ(popped_sum.load(), pushed_sum.load());
  std::uint64_t v;
  EXPECT_FALSE(q.try_pop(v));
}

// --- ShardRouter -------------------------------------------------------

TEST(ShardRouter, DeterministicAndSpreadsKeys) {
  const ShardRouter router(4);
  std::map<std::size_t, int> per_shard;
  for (int i = 0; i < 1000; ++i) {
    const std::string key = "structure-" + std::to_string(i);
    const std::size_t shard = router.route(key);
    ASSERT_LT(shard, 4u);
    EXPECT_EQ(shard, router.route(key));  // pure function of the key
    EXPECT_EQ(shard, router.route_hash(model::hash_bytes(key)));
    per_shard[shard]++;
  }
  // 64 vnodes/shard split 1000 keys roughly evenly; no shard may be
  // starved or hog the ring.
  ASSERT_EQ(per_shard.size(), 4u);
  for (const auto& [shard, count] : per_shard) {
    EXPECT_GT(count, 100) << "shard " << shard << " starved";
    EXPECT_LT(count, 500) << "shard " << shard << " overloaded";
  }
}

TEST(ShardRouter, ConsistentHashingMovesFewKeysWhenShardJoins) {
  const ShardRouter four(4);
  const ShardRouter five(5);
  int moved = 0;
  constexpr int kKeys = 2000;
  for (int i = 0; i < kKeys; ++i) {
    const std::uint64_t h =
        model::hash_bytes("structure-" + std::to_string(i));
    const std::size_t before = four.route_hash(h);
    const std::size_t after = five.route_hash(h);
    if (after != before) {
      // A key may only move TO the new shard; surviving shards never
      // trade keys with each other (their caches stay warm).
      EXPECT_EQ(after, 4u);
      ++moved;
    }
  }
  // Expected churn is ~1/5 of the keyspace.
  EXPECT_GT(moved, kKeys / 20);
  EXPECT_LT(moved, kKeys / 2);
}

TEST(ShardRouter, SingleShardShortCircuits) {
  const ShardRouter router(1);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(router.route("k" + std::to_string(i)), 0u);
  }
}

TEST(ShardRouter, ReplicaSetsAreDistinctDeterministicAndPrimaryFirst) {
  const ShardRouter router(5);
  for (int i = 0; i < 200; ++i) {
    const std::string key = "structure-" + std::to_string(i);
    const auto set = router.replica_set(key, 3);
    ASSERT_EQ(set.size(), 3u);
    // The primary is route()'s answer; successors are distinct shards.
    EXPECT_EQ(set.front(), router.route(key));
    const std::set<std::size_t> distinct(set.begin(), set.end());
    EXPECT_EQ(distinct.size(), set.size());
    // Deterministic: every frontend derives the same failover order.
    EXPECT_EQ(set, router.replica_set(key, 3));
    EXPECT_EQ(set, router.replica_set_hash(model::hash_bytes(key), 3));
    // Widening the set keeps the prefix (replica order nests).
    const auto wider = router.replica_set(key, 4);
    ASSERT_EQ(wider.size(), 4u);
    EXPECT_TRUE(std::equal(set.begin(), set.end(), wider.begin()));
  }
  // R caps at the shard count.
  EXPECT_EQ(router.replica_set("k", 99).size(), 5u);
  const ShardRouter one(1);
  EXPECT_EQ(one.replica_set("k", 3), std::vector<std::size_t>{0});
}

// --- Sharded service ---------------------------------------------------

// The tentpole determinism contract: with the same fixed request set,
// per-request results are BIT-exact at any shard count. Four structure
// families interleaved, all three modes (Monte-Carlo both unchunked and
// chunked), fixed seeds.
TEST(ShardedService, ResultsBitExactVsUnsharded) {
  const std::vector<std::size_t> family_n = {120, 160, 200, 240};
  const auto run = [&](std::size_t shards) {
    ServiceOptions options;
    options.shards = shards;
    options.workers = 2;
    PredictionService service(options);
    for (std::size_t f = 0; f < family_n.size(); ++f) {
      service.register_model("fam" + std::to_string(f),
                             family_spec(family_n[f]));
    }
    std::vector<std::future<PredictResult>> futures;
    for (int wave = 0; wave < 6; ++wave) {
      for (std::size_t f = 0; f < family_n.size(); ++f) {
        auto request = stochastic_request(
            "fam" + std::to_string(f),
            loads_for(2, 0.6 + 0.03 * double(wave)));
        request.mode = wave % 3 == 0   ? Mode::kStochastic
                       : wave % 3 == 1 ? Mode::kPoint
                                       : Mode::kMonteCarlo;
        request.trials = wave < 3 ? 512 : 6000;  // unchunked and chunked
        request.seed = 7 + std::uint64_t(wave);
        futures.push_back(service.submit(std::move(request)));
      }
    }
    std::vector<PredictResult> results;
    results.reserve(futures.size());
    for (auto& f : futures) results.push_back(f.get());
    return results;
  };

  const auto unsharded = run(1);
  const auto sharded = run(4);
  ASSERT_EQ(unsharded.size(), sharded.size());
  for (std::size_t i = 0; i < unsharded.size(); ++i) {
    ASSERT_TRUE(unsharded[i].ok()) << unsharded[i].error;
    ASSERT_TRUE(sharded[i].ok()) << sharded[i].error;
    EXPECT_EQ(unsharded[i].value, sharded[i].value) << "request " << i;
    EXPECT_EQ(unsharded[i].point, sharded[i].point) << "request " << i;
  }
}

// Work stealing: with a single hot family and strict affinity, one
// shard eats the whole backlog; with a steal threshold the facade
// reroutes the overflow to the idle shard — and per-request results stay
// bit-exact, because evaluation is shard-independent.
TEST(ShardedService, WorkStealingRebalancesBacklogAndStaysBitExact) {
  constexpr int kRequests = 16;
  const auto run = [&](std::size_t steal_threshold) {
    ServiceOptions options;
    options.shards = 2;
    options.workers = 1;
    options.steal_threshold = steal_threshold;
    options.start_paused = true;  // stage the backlog deterministically
    PredictionService service(options);
    service.register_model("fam", family_spec(150));
    std::vector<std::future<PredictResult>> futures;
    for (int i = 0; i < kRequests; ++i) {
      futures.push_back(service.submit(
          stochastic_request("fam", loads_for(2, 0.6 + 0.02 * i))));
    }
    service.resume();
    std::vector<PredictResult> results;
    results.reserve(futures.size());
    for (auto& f : futures) results.push_back(f.get());
    return std::pair(std::move(results),
                     service.metrics().counter("requests_stolen").value());
  };

  const auto [affine, stolen_off] = run(0);
  const auto [balanced, stolen_on] = run(2);
  EXPECT_EQ(stolen_off, 0u);  // 0 disables stealing: affinity is strict
  EXPECT_GT(stolen_on, 0u);

  ASSERT_EQ(affine.size(), balanced.size());
  std::set<std::size_t> serving_shards;
  for (std::size_t i = 0; i < affine.size(); ++i) {
    ASSERT_TRUE(affine[i].ok()) << affine[i].error;
    ASSERT_TRUE(balanced[i].ok()) << balanced[i].error;
    EXPECT_EQ(balanced[i].value, affine[i].value) << "request " << i;
    EXPECT_EQ(balanced[i].point, affine[i].point) << "request " << i;
    serving_shards.insert(
        PredictionService::shard_of_id(balanced[i].request_id));
  }
  // The stolen requests really ran on the other shard.
  EXPECT_EQ(serving_shards.size(), 2u);
}

TEST(ShardedService, StructureAffinityRoutesFamiliesStably) {
  ServiceOptions options;
  options.shards = 4;
  options.workers = 1;
  PredictionService service(options);
  service.register_model("a", family_spec(100));
  service.register_model("a-alias", family_spec(100));  // same structure
  service.register_model("b", family_spec(300));
  // Aliases of one structure land on one shard (that shard's cache and
  // fusion scan own the family).
  EXPECT_EQ(service.shard_of("a"), service.shard_of("a-alias"));
  // Ids encode the owning shard.
  auto result = service.submit(stochastic_request("a", loads_for(2))).get();
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(PredictionService::shard_of_id(result.request_id),
            service.shard_of("a"));
}

TEST(ShardedService, PerReasonRejectionCounters) {
  ServiceOptions options;
  options.shards = 2;
  options.workers = 1;
  options.queue_capacity = 2;
  options.start_paused = true;
  PredictionService service(options);
  service.register_model("m", family_spec(100));
  const std::size_t home = service.shard_of("m");

  // Overflow the routed shard's (paused) queue: capacity admits exactly
  // 2, the rest shed with the queue-full reason.
  std::vector<std::future<PredictResult>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(service.submit(stochastic_request("m", loads_for(2))));
  }
  std::size_t queue_full = 0;
  for (auto& f : futures) {
    // Rejections resolve synchronously at submit; admitted requests stay
    // pending behind the paused workers, so ready-now means rejected.
    if (f.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
      continue;
    }
    const auto result = f.get();
    EXPECT_EQ(result.status, PredictResult::Status::kRejected);
    EXPECT_NE(result.error.find("queue full"), std::string::npos);
    ++queue_full;
  }
  EXPECT_EQ(queue_full, 4u);
  EXPECT_EQ(service.metrics().counter("rejected_queue_full").value(), 4u);
  EXPECT_EQ(service.metrics().counter("rejected_shard_unavailable").value(),
            0u);
  // The routed shard's local registry carries the same count; the other
  // shard saw nothing.
  EXPECT_EQ(service.shard_metrics(home).counter("rejected_queue_full").value(),
            4u);
  EXPECT_EQ(service.shard_metrics(1 - home)
                .counter("rejected_queue_full")
                .value(),
            0u);

  // Routing-layer shed: mark the family's shard unavailable.
  service.set_shard_available(home, false);
  const auto unavailable =
      service.submit(stochastic_request("m", loads_for(2))).get();
  EXPECT_EQ(unavailable.status, PredictResult::Status::kRejected);
  EXPECT_NE(unavailable.error.find("unavailable"), std::string::npos);
  EXPECT_EQ(service.metrics().counter("rejected_shard_unavailable").value(),
            1u);
  service.set_shard_available(home, true);

  // Totals roll the reasons up.
  EXPECT_EQ(service.metrics().counter("requests_rejected").value(), 5u);
  service.resume();
}

TEST(ShardedService, StoppedServiceRejectsQueuedWorkWithReason) {
  std::vector<std::future<PredictResult>> futures;
  std::uint64_t stopped_count = 0;
  {
    ServiceOptions options;
    options.shards = 2;
    options.workers = 1;
    options.start_paused = true;
    PredictionService service(options);
    service.register_model("m", family_spec(100));
    for (int i = 0; i < 3; ++i) {
      futures.push_back(service.submit(stochastic_request("m", loads_for(2))));
    }
    stopped_count = service.metrics().counter("rejected_stopped").value();
    EXPECT_EQ(stopped_count, 0u);
  }  // service destroyed with the queue still staged
  for (auto& f : futures) {
    const auto result = f.get();
    EXPECT_EQ(result.status, PredictResult::Status::kRejected);
    EXPECT_EQ(result.error, "service stopped");
  }
}

// Epoch layer under sharding: publishes fan out to every shard, and no
// request — whatever shard it routes to — ever observes bindings from
// two epochs. Four structure families force traffic across shards while
// a publisher races.
TEST(ShardedService, EpochPinningHoldsAcrossShardsUnderConcurrentPublish) {
  constexpr std::uint64_t kEpochs = 60;
  const std::vector<std::size_t> family_n = {120, 160, 200, 240};
  std::vector<ModelSpec> specs;
  for (const std::size_t n : family_n) specs.push_back(family_spec(n));

  const auto loads_for_version = [](std::uint64_t k) {
    const double base = 0.5 + 0.4 * double(k) / double(kEpochs);
    return std::vector<stoch::StochasticValue>{
        stoch::StochasticValue(base, 0.05),
        stoch::StochasticValue(base - 0.1, 0.05)};
  };

  // Reference evaluation per (family, version), outside the service.
  std::vector<std::map<std::uint64_t, stoch::StochasticValue>> expected(
      specs.size());
  for (std::size_t f = 0; f < specs.size(); ++f) {
    const predict::SorStructuralModel direct(specs[f].platform,
                                             specs[f].config,
                                             specs[f].options);
    for (std::uint64_t k = 1; k <= kEpochs; ++k) {
      expected[f].emplace(
          k, direct.predict(direct.make_slot_env(
                 loads_for_version(k), stoch::StochasticValue(1.0))));
    }
  }

  const auto epoch_for = [&](std::uint64_t k) {
    const auto loads = loads_for_version(k);
    return std::make_shared<const BindingsEpoch>(
        k, std::map<std::string, stoch::StochasticValue>{
               {"cpu/a", loads[0]}, {"cpu/b", loads[1]}});
  };

  ServiceOptions options;
  options.shards = 4;
  options.workers = 2;
  PredictionService service(options);
  for (std::size_t f = 0; f < specs.size(); ++f) {
    service.register_model("fam" + std::to_string(f), specs[f]);
  }
  service.publish_epoch(epoch_for(1));

  std::atomic<bool> stop{false};
  std::thread publisher([&] {
    for (std::uint64_t k = 2; k <= kEpochs && !stop.load(); ++k) {
      service.publish_epoch(epoch_for(k));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    stop.store(true);
  });

  constexpr int kSubmitters = 3;
  std::vector<std::thread> submitters;
  std::atomic<int> checked{0};
  std::atomic<bool> mismatch{false};
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      std::size_t f = static_cast<std::size_t>(t);
      while (!stop.load()) {
        f = (f + 1) % specs.size();
        PredictRequest request;
        request.model_id = "fam" + std::to_string(f);
        request.resources = {"cpu/a", "cpu/b"};
        auto result = service.submit(std::move(request)).get();
        if (!result.ok()) continue;  // rejected under shutdown only
        const auto it = expected[f].find(result.epoch_version);
        if (it == expected[f].end() || result.value != it->second) {
          mismatch.store(true);
        }
        checked.fetch_add(1);
      }
    });
  }
  publisher.join();
  for (auto& t : submitters) t.join();
  EXPECT_FALSE(mismatch.load());
  EXPECT_GT(checked.load(), 0);
}

TEST(ShardedService, MetricsAggregateAcrossShardLabels) {
  ServiceOptions options;
  options.shards = 4;
  options.workers = 1;
  PredictionService service(options);
  const std::vector<std::size_t> family_n = {120, 160, 200, 240};
  for (std::size_t f = 0; f < family_n.size(); ++f) {
    service.register_model("fam" + std::to_string(f),
                           family_spec(family_n[f]));
  }
  std::vector<std::future<PredictResult>> futures;
  for (int i = 0; i < 40; ++i) {
    futures.push_back(service.submit(stochastic_request(
        "fam" + std::to_string(i % 4), loads_for(2))));
  }
  for (auto& f : futures) ASSERT_TRUE(f.get().ok());
  service.drain();

  // Rolled-up total equals the sum over shard-local registries.
  std::uint64_t across = 0;
  for (std::size_t s = 0; s < service.shard_count(); ++s) {
    across += service.shard_metrics(s).counter("requests_total").value();
  }
  EXPECT_EQ(service.metrics().counter("requests_total").value(), 40u);
  EXPECT_EQ(across, 40u);

  // render_json carries both the roll-up and shard-labeled rows with
  // per-shard latency quantiles.
  const std::string json = service.metrics().render_json();
  EXPECT_NE(json.find("\"requests_total\""), std::string::npos);
  EXPECT_NE(json.find("\"shard0/requests_total\""), std::string::npos);
  EXPECT_NE(json.find("\"shard3/latency_seconds\""), std::string::npos);
  bool shard_latency_seen = false;
  for (const auto& sample : service.metrics().snapshot()) {
    if (sample.name.find("/latency_seconds") != std::string::npos &&
        sample.value > 0) {
      shard_latency_seen = true;
    }
  }
  EXPECT_TRUE(shard_latency_seen);
}

TEST(ShardedService, ObservationsRouteToTheOwningShard) {
  ServiceOptions options;
  options.shards = 4;
  options.workers = 1;
  options.ledger = std::make_shared<calib::AccuracyLedger>();
  PredictionService service(options);
  const std::vector<std::size_t> family_n = {120, 160, 200, 240};
  for (std::size_t f = 0; f < family_n.size(); ++f) {
    service.register_model("fam" + std::to_string(f),
                           family_spec(family_n[f]));
  }
  std::vector<std::future<PredictResult>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(service.submit(stochastic_request(
        "fam" + std::to_string(i % 4), loads_for(2))));
  }
  for (auto& f : futures) {
    const auto result = f.get();
    ASSERT_TRUE(result.ok()) << result.error;
    EXPECT_TRUE(service.report_observation(result.request_id,
                                           result.point * 1.01));
    // A second report of the same id is unmatched (already consumed).
    EXPECT_FALSE(service.report_observation(result.request_id, 1.0));
  }
  EXPECT_EQ(service.metrics().counter("observations_recorded").value(), 16u);
  EXPECT_EQ(service.metrics().counter("observations_unmatched").value(), 16u);
  // An id encoding a nonexistent shard is rejected without touching any
  // shard's FIFO.
  EXPECT_FALSE(service.report_observation(0xff, 1.0));
  EXPECT_EQ(options.ledger->model_ids().size(), 4u);
}

// Program-cache consistency under model churn: an id re-registered to a
// NEW structure mid-flight must never be served a program compiled for
// the OLD structure key (the immutable ModelTable::Entry snapshot plus
// the single-flight cache guarantee spec/key agreement). Every kOk
// result must bit-match one of the two structures' reference values.
TEST(ShardedService, ProgramCacheNeverServesStaleStructureUnderChurn) {
  const ModelSpec spec_a = family_spec(120);
  const ModelSpec spec_b = family_spec(240);
  const auto loads = loads_for(2);

  const auto reference = [&](const ModelSpec& spec) {
    const predict::SorStructuralModel direct(spec.platform, spec.config,
                                             spec.options);
    return direct.predict(
        direct.make_slot_env(loads, stoch::StochasticValue(1.0)));
  };
  const stoch::StochasticValue expect_a = reference(spec_a);
  const stoch::StochasticValue expect_b = reference(spec_b);
  ASSERT_NE(expect_a, expect_b);

  ServiceOptions options;
  options.shards = 2;
  options.workers = 2;
  PredictionService service(options);
  service.register_model("churn", spec_a);

  std::atomic<bool> stop{false};
  std::thread churner([&] {
    for (int i = 0; i < 200; ++i) {
      service.register_model("churn", i % 2 == 0 ? spec_b : spec_a);
      std::this_thread::yield();
    }
    stop.store(true);
  });

  std::atomic<int> checked{0};
  std::atomic<bool> wrong_value{false};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 3; ++t) {
    submitters.emplace_back([&] {
      while (!stop.load()) {
        const auto result =
            service.submit(stochastic_request("churn", loads)).get();
        if (!result.ok()) continue;
        if (result.value != expect_a && result.value != expect_b) {
          wrong_value.store(true);
        }
        checked.fetch_add(1);
      }
    });
  }
  churner.join();
  for (auto& t : submitters) t.join();
  EXPECT_FALSE(wrong_value.load());
  EXPECT_GT(checked.load(), 0);
  // Both structures were compiled at most once per shard that served
  // them: churn re-keys lookups, it never recompiles a cached structure.
  std::uint64_t compiles = 0;
  for (std::size_t s = 0; s < service.shard_count(); ++s) {
    compiles += service.cache(s).compile_count();
  }
  EXPECT_LE(compiles, 2u * service.shard_count());
  EXPECT_GE(compiles, 1u);
}

}  // namespace
}  // namespace sspred::serve
