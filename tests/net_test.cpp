// Unit tests for the shared-ethernet fluid model.
#include <gtest/gtest.h>

#include <vector>

#include "net/ethernet.hpp"
#include "sim/engine.hpp"
#include "support/error.hpp"

namespace sspred::net {
namespace {

EthernetSpec dedicated_spec() {
  EthernetSpec spec;
  spec.availability = dedicated_availability();
  return spec;  // 10 Mbit nominal, ~1.0 availability
}

TEST(SharedEthernet, SingleTransferTakesBytesOverBandwidth) {
  sim::Engine eng;
  SharedEthernet eth(eng, dedicated_spec(), 1);
  double done_at = -1.0;
  eth.start_transfer(1.25e6, [&] { done_at = eng.now(); });
  eng.run();
  EXPECT_NEAR(done_at, 1.0, 0.02);  // 1.25 MB at 1.25 MB/s
  EXPECT_DOUBLE_EQ(eth.bytes_delivered(), 1.25e6);
}

TEST(SharedEthernet, TwoEqualTransfersShareFairly) {
  sim::Engine eng;
  SharedEthernet eth(eng, dedicated_spec(), 1);
  std::vector<double> done;
  eth.start_transfer(1.25e6, [&] { done.push_back(eng.now()); });
  eth.start_transfer(1.25e6, [&] { done.push_back(eng.now()); });
  eng.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 2.0, 0.05);
  EXPECT_NEAR(done[1], 2.0, 0.05);
}

TEST(SharedEthernet, ShortTransferFinishesFirstThenLongSpeedsUp) {
  sim::Engine eng;
  SharedEthernet eth(eng, dedicated_spec(), 1);
  double short_done = -1.0;
  double long_done = -1.0;
  eth.start_transfer(2.5e6, [&] { long_done = eng.now(); });
  eth.start_transfer(1.25e6, [&] { short_done = eng.now(); });
  eng.run();
  // Short: 1.25 MB at half rate -> ~2 s. Long: 1.25 MB left at full rate
  // after t=2 -> ~3 s total.
  EXPECT_NEAR(short_done, 2.0, 0.06);
  EXPECT_NEAR(long_done, 3.0, 0.08);
}

TEST(SharedEthernet, LateArrivalSlowsInFlightTransfer) {
  sim::Engine eng;
  SharedEthernet eth(eng, dedicated_spec(), 1);
  double first_done = -1.0;
  eth.start_transfer(2.5e6, [&] { first_done = eng.now(); });
  eng.schedule_at(1.0, [&] { eth.start_transfer(2.5e6, [] {}); });
  eng.run();
  // First: 1.25MB in the first second, the rest at half rate -> ~3 s.
  EXPECT_NEAR(first_done, 3.0, 0.08);
}

TEST(SharedEthernet, AvailabilityScalesThroughput) {
  sim::Engine eng;
  EthernetSpec spec;
  stats::ModeState half;
  half.shape.center = 0.5;
  half.shape.sd = 1e-4;
  half.mean_dwell = 1e9;
  spec.availability.modes.push_back(half);
  spec.availability.lo = 0.4;
  spec.availability.hi = 0.6;
  SharedEthernet eth(eng, spec, 3);
  double done_at = -1.0;
  eth.start_transfer(1.25e6, [&] { done_at = eng.now(); });
  eng.run();
  EXPECT_NEAR(done_at, 2.0, 0.05);  // half the capacity -> twice the time
}

TEST(SharedEthernet, EngineTerminatesWhenIdle) {
  sim::Engine eng;
  SharedEthernet eth(eng, dedicated_spec(), 1);
  eth.start_transfer(1e5, [] {});
  eng.run();  // must not hang on availability ticks
  EXPECT_EQ(eth.active_transfers(), 0u);
  const auto events_after_first_run = eng.events_processed();
  eng.run();
  EXPECT_EQ(eng.events_processed(), events_after_first_run);
}

TEST(SharedEthernet, SequentialTransfersIndependent) {
  sim::Engine eng;
  SharedEthernet eth(eng, dedicated_spec(), 1);
  std::vector<double> done;
  eth.start_transfer(1.25e6, [&] {
    done.push_back(eng.now());
    eth.start_transfer(1.25e6, [&] { done.push_back(eng.now()); });
  });
  eng.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 1.0, 0.02);
  EXPECT_NEAR(done[1], 2.0, 0.04);
}

TEST(SharedEthernet, TransferAwaitableResumesProcess) {
  sim::Engine eng;
  SharedEthernet eth(eng, dedicated_spec(), 1);
  double resumed_at = -1.0;
  eng.spawn([](sim::Engine& e, SharedEthernet& net, double& out) -> sim::Process {
    co_await net.transfer(1.25e6);
    out = e.now();
  }(eng, eth, resumed_at));
  eng.run();
  EXPECT_NEAR(resumed_at, 1.0, 0.02);
}

TEST(SharedEthernet, ZeroByteTransferRejected) {
  sim::Engine eng;
  SharedEthernet eth(eng, dedicated_spec(), 1);
  EXPECT_THROW(eth.start_transfer(0.0, [] {}), support::Error);
}

TEST(SharedEthernet, InvalidSpecRejected) {
  sim::Engine eng;
  EthernetSpec bad = dedicated_spec();
  bad.nominal_bandwidth = 0.0;
  EXPECT_THROW(SharedEthernet(eng, bad, 1), support::Error);
  EthernetSpec bad2 = dedicated_spec();
  bad2.latency = -1.0;
  EXPECT_THROW(SharedEthernet(eng, bad2, 1), support::Error);
}

TEST(SharedEthernet, ManyTransfersConserveWork) {
  sim::Engine eng;
  SharedEthernet eth(eng, dedicated_spec(), 1);
  int completed = 0;
  for (int i = 0; i < 10; ++i) {
    eth.start_transfer(1.25e5, [&] { ++completed; });
  }
  eng.run();
  EXPECT_EQ(completed, 10);
  // Total service time: 10 * 0.125 MB at 1.25 MB/s = 1 s regardless of
  // the sharing pattern (work conservation).
  EXPECT_NEAR(eng.now(), 1.0, 0.03);
}

TEST(ProductionAvailability, LongTailedBelowNominal) {
  sim::Engine eng;
  EthernetSpec spec;
  stats::ModeState prod;
  prod.shape.center = 0.525;
  prod.shape.sd = 0.06;
  prod.shape.tail = stats::Tail::kDown;
  prod.mean_dwell = 30.0;
  spec.availability.modes.push_back(prod);
  spec.availability.lo = 0.05;
  spec.availability.hi = 1.0;
  SharedEthernet eth(eng, spec, 7);
  // Probe the availability process via repeated small transfers.
  std::vector<double> samples;
  double prev = 0.0;
  std::function<void()> chain = [&] {
    samples.push_back(eng.now() - prev);
    prev = eng.now();
    if (samples.size() < 200) eth.start_transfer(1.25e5, chain);
  };
  eth.start_transfer(1.25e5, chain);
  eng.run();
  // Mean effective availability ~0.525 -> mean per-transfer time ~0.19 s.
  double total = 0.0;
  for (double s : samples) total += s;
  const double mean_time = total / static_cast<double>(samples.size());
  EXPECT_GT(mean_time, 0.13);
  EXPECT_LT(mean_time, 0.35);
}

}  // namespace
}  // namespace sspred::net
