// Unit + integration tests for the SOR structural model and the
// predict-then-execute harness.
#include <gtest/gtest.h>

#include "predict/experiment.hpp"
#include "predict/sor_model.hpp"
#include "sor/distributed.hpp"
#include "support/error.hpp"

namespace sspred::predict {
namespace {

TEST(SorModel, ParameterNamesPerHost) {
  const auto platform = cluster::platform1();
  sor::SorConfig cfg;
  cfg.n = 100;
  const SorStructuralModel model(platform, cfg);
  EXPECT_EQ(model.hosts(), 4u);
  EXPECT_EQ(model.load_param(0), "load/sparc2-a");
  EXPECT_EQ(model.load_param(3), "load/sparc10");
  const auto params = model.expr()->parameters();
  EXPECT_EQ(params.size(), 5u);  // 4 loads + bwavail
}

TEST(SorModel, MakeEnvBindsEverything) {
  const auto platform = cluster::dedicated_platform(3);
  sor::SorConfig cfg;
  cfg.n = 60;
  const SorStructuralModel model(platform, cfg);
  const std::vector<stoch::StochasticValue> loads(3, {1.0});
  const auto env = model.make_env(loads, stoch::StochasticValue(1.0));
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_TRUE(env.has(model.load_param(p)));
  }
  EXPECT_TRUE(env.has(SorStructuralModel::bwavail_param()));
  const std::vector<stoch::StochasticValue> wrong(2, {1.0});
  EXPECT_THROW((void)model.make_env(wrong, {1.0}), support::Error);
}

TEST(SorModel, PredictionScalesWithIterationsAndSize) {
  const auto platform = cluster::dedicated_platform(4);
  const std::vector<stoch::StochasticValue> loads(4, {1.0});

  sor::SorConfig small;
  small.n = 400;
  small.iterations = 10;
  sor::SorConfig big_iters = small;
  big_iters.iterations = 20;
  sor::SorConfig big_n = small;
  big_n.n = 800;

  const double t_small = SorStructuralModel(platform, small)
                             .predict_point(SorStructuralModel(platform, small)
                                                .make_env(loads, {1.0}));
  const SorStructuralModel m_iters(platform, big_iters);
  const double t_iters = m_iters.predict_point(m_iters.make_env(loads, {1.0}));
  const SorStructuralModel m_n(platform, big_n);
  const double t_n = m_n.predict_point(m_n.make_env(loads, {1.0}));

  EXPECT_NEAR(t_iters, 2.0 * t_small, 1e-9);
  // Compute scales ~4x, communication ~2x; the mix lands in between.
  EXPECT_GT(t_n, 2.5 * t_small);
  EXPECT_LT(t_n, 4.0 * t_small);
}

TEST(SorModel, StochasticLoadWidensPrediction) {
  const auto platform = cluster::dedicated_platform(2);
  sor::SorConfig cfg;
  cfg.n = 200;
  const SorStructuralModel model(platform, cfg);
  const std::vector<stoch::StochasticValue> point_loads(2, {0.5});
  const std::vector<stoch::StochasticValue> stoch_loads(
      2, stoch::StochasticValue(0.5, 0.05));
  const auto p = model.predict(model.make_env(point_loads, {1.0}));
  const auto s = model.predict(model.make_env(stoch_loads, {1.0}));
  EXPECT_DOUBLE_EQ(p.halfwidth(), 0.0);
  EXPECT_GT(s.halfwidth(), 0.0);
  EXPECT_NEAR(p.mean(), s.mean(), 1e-9);
}

TEST(SorModel, DedicatedPredictionWithinTwoPercentOfSimulation) {
  // The paper's §2.2.1 claim: "the structural model defined in this
  // section predicted overall application execution times to within 2%".
  const auto spec = cluster::dedicated_platform(4);
  sor::SorConfig cfg;
  cfg.n = 600;
  cfg.iterations = 20;
  cfg.real_numerics = false;  // timing identical, faster test
  const SorStructuralModel model(spec, cfg);
  const std::vector<stoch::StochasticValue> loads(4, {1.0});
  const double predicted =
      model.predict_point(model.make_env(loads, {1.0}));

  sim::Engine engine;
  cluster::Platform platform(engine, spec, 5);
  const double actual =
      sor::run_distributed_sor(engine, platform, cfg).total_time;
  EXPECT_NEAR(predicted, actual, 0.02 * actual);
}

TEST(SorModel, HeterogeneousPlatformDominatedBySlowest) {
  const auto spec = cluster::platform1();
  sor::SorConfig cfg;
  cfg.n = 400;
  cfg.iterations = 10;
  const SorStructuralModel model(spec, cfg);
  // All dedicated: prediction must track the slowest machine (sparc2).
  const std::vector<stoch::StochasticValue> loads(4, {1.0});
  const double with_uniform =
      model.predict_point(model.make_env(loads, {1.0}));
  const double sparc2_compute =
      400.0 / 4.0 * 400.0 *  // elements per rank
      machine::sparc2_spec().bm_seconds_per_element * 10.0;
  EXPECT_GT(with_uniform, sparc2_compute * 0.95);
}

TEST(Experiment, DedicatedSeriesCapturesActuals) {
  SeriesConfig cfg;
  cfg.platform = cluster::dedicated_platform(4);
  cfg.sor.n = 300;
  cfg.sor.iterations = 10;
  cfg.sor.real_numerics = false;
  cfg.trials = 3;
  cfg.load_source = LoadParameterSource::kDedicated;
  const auto outcomes = run_series(cfg);
  ASSERT_EQ(outcomes.size(), 3u);
  for (const auto& o : outcomes) {
    EXPECT_GT(o.actual, 0.0);
    EXPECT_NEAR(o.predicted.mean(), o.actual, 0.03 * o.actual);
  }
}

TEST(Experiment, SizeSweepReturnsMonotoneTimes) {
  SeriesConfig cfg;
  cfg.platform = cluster::dedicated_platform(4);
  cfg.sor.iterations = 10;
  cfg.sor.real_numerics = false;
  cfg.load_source = LoadParameterSource::kDedicated;
  const std::vector<std::size_t> sizes{200, 400, 600};
  const auto outcomes = run_size_sweep(cfg, sizes);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_LT(outcomes[0].actual, outcomes[1].actual);
  EXPECT_LT(outcomes[1].actual, outcomes[2].actual);
}

TEST(Experiment, Platform1SingleModeCapture) {
  // The §3.1 regime: quiet machines, slowest host in its centre mode.
  // Stochastic predictions should capture the actual times.
  SeriesConfig cfg;
  cfg.platform = cluster::platform1();
  cfg.sor.n = 1000;  // the paper's problem-size regime: compute dominates
  cfg.sor.iterations = 15;
  cfg.sor.real_numerics = false;
  cfg.trials = 4;
  cfg.load_source = LoadParameterSource::kRecentSample;
  cfg.bwavail = stoch::StochasticValue::from_mean_sd(0.525, 0.06);
  const auto outcomes = run_series(cfg);
  const auto s = score(outcomes);
  EXPECT_GE(s.capture_fraction, 0.5);
  EXPECT_LT(s.mean_mean_error, 0.25);
}

TEST(Experiment, ScoreMatchesManualComputation) {
  std::vector<TrialOutcome> outcomes(2);
  outcomes[0].predicted = stoch::StochasticValue(10.0, 2.0);
  outcomes[0].actual = 11.0;
  outcomes[1].predicted = stoch::StochasticValue(10.0, 2.0);
  outcomes[1].actual = 14.0;
  const auto s = score(outcomes);
  EXPECT_DOUBLE_EQ(s.capture_fraction, 0.5);
  EXPECT_NEAR(s.max_range_error, 2.0 / 14.0, 1e-12);
  EXPECT_DOUBLE_EQ(outcomes[0].point_predicted(), 10.0);
}

}  // namespace
}  // namespace sspred::predict
