// Unit tests for StochasticValue construction, accessors and range logic.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include "stoch/stochastic_value.hpp"
#include "support/error.hpp"

namespace sspred::stoch {
namespace {

TEST(StochasticValue, DefaultIsZeroPoint) {
  const StochasticValue v;
  EXPECT_DOUBLE_EQ(v.mean(), 0.0);
  EXPECT_DOUBLE_EQ(v.halfwidth(), 0.0);
  EXPECT_TRUE(v.is_point());
}

TEST(StochasticValue, MeanHalfwidthAccessors) {
  const StochasticValue v(12.0, 0.6);
  EXPECT_DOUBLE_EQ(v.mean(), 12.0);
  EXPECT_DOUBLE_EQ(v.halfwidth(), 0.6);
  EXPECT_DOUBLE_EQ(v.sd(), 0.3);
  EXPECT_DOUBLE_EQ(v.lower(), 11.4);
  EXPECT_DOUBLE_EQ(v.upper(), 12.6);
  EXPECT_FALSE(v.is_point());
}

TEST(StochasticValue, ImplicitFromDoubleIsPoint) {
  const StochasticValue v = 7.5;
  EXPECT_TRUE(v.is_point());
  EXPECT_DOUBLE_EQ(v.mean(), 7.5);
}

TEST(StochasticValue, NegativeHalfwidthThrows) {
  EXPECT_THROW(StochasticValue(1.0, -0.1), support::Error);
}

TEST(StochasticValue, NonFiniteThrows) {
  EXPECT_THROW(StochasticValue(std::numeric_limits<double>::infinity(), 0.0),
               support::Error);
  EXPECT_THROW(StochasticValue(0.0, std::numeric_limits<double>::quiet_NaN()),
               support::Error);
}

TEST(StochasticValue, FromPercentMatchesPaperExamples) {
  // Paper Table 1: 12 sec ± 30% -> interval [8.4, 15.6].
  const StochasticValue b = StochasticValue::from_percent(12.0, 30.0);
  EXPECT_DOUBLE_EQ(b.lower(), 8.4);
  EXPECT_DOUBLE_EQ(b.upper(), 15.6);
  // 12 sec ± 5% -> [11.4, 12.6].
  const StochasticValue a = StochasticValue::from_percent(12.0, 5.0);
  EXPECT_DOUBLE_EQ(a.lower(), 11.4);
  EXPECT_DOUBLE_EQ(a.upper(), 12.6);
}

TEST(StochasticValue, FromPercentOfNegativeMean) {
  const StochasticValue v = StochasticValue::from_percent(-10.0, 10.0);
  EXPECT_DOUBLE_EQ(v.halfwidth(), 1.0);  // halfwidth stays positive
}

TEST(StochasticValue, FromMeanSdDoublesTheSd) {
  const StochasticValue v = StochasticValue::from_mean_sd(5.25, 0.4);
  EXPECT_DOUBLE_EQ(v.halfwidth(), 0.8);  // the paper's 5.25 ± 0.8
  EXPECT_DOUBLE_EQ(v.sd(), 0.4);
}

TEST(StochasticValue, FromSampleUsesSampleMoments) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  const StochasticValue v = StochasticValue::from_sample(xs);
  EXPECT_DOUBLE_EQ(v.mean(), 3.0);
  EXPECT_NEAR(v.sd(), std::sqrt(2.5), 1e-12);
}

TEST(StochasticValue, RelativeHalfwidth) {
  const StochasticValue v = StochasticValue::from_percent(8.0, 25.0);
  EXPECT_NEAR(v.relative(), 0.25, 1e-12);
  EXPECT_THROW((void)StochasticValue(0.0, 1.0).relative(), support::Error);
}

TEST(StochasticValue, ContainsIsClosedInterval) {
  const StochasticValue v(10.0, 1.0);
  EXPECT_TRUE(v.contains(9.0));
  EXPECT_TRUE(v.contains(11.0));
  EXPECT_TRUE(v.contains(10.5));
  EXPECT_FALSE(v.contains(8.999));
  EXPECT_FALSE(v.contains(11.001));
}

TEST(StochasticValue, OutOfRangeDistancePerPaperFootnote6) {
  const StochasticValue v(10.0, 1.0);  // range [9, 11]
  EXPECT_DOUBLE_EQ(v.out_of_range_distance(10.3), 0.0);
  EXPECT_DOUBLE_EQ(v.out_of_range_distance(8.0), 1.0);
  EXPECT_DOUBLE_EQ(v.out_of_range_distance(12.5), 1.5);
}

TEST(StochasticValue, ToNormalRoundTrip) {
  const StochasticValue v(3.0, 2.0);
  const auto n = v.to_normal();
  EXPECT_DOUBLE_EQ(n.mean(), 3.0);
  EXPECT_DOUBLE_EQ(n.sd(), 1.0);
  EXPECT_THROW((void)StochasticValue(3.0, 0.0).to_normal(), support::Error);
}

TEST(StochasticValue, TwoSigmaCoversAbout95Percent) {
  const StochasticValue v(0.0, 2.0);  // sd = 1
  const auto n = v.to_normal();
  EXPECT_NEAR(n.probability_in(v.lower(), v.upper()), 0.9545, 1e-3);
}

TEST(StochasticValue, ToStringFormats) {
  EXPECT_EQ(StochasticValue(12.0, 0.6).to_string(2), "12.00 ± 0.60");
  EXPECT_EQ(StochasticValue(3.0).to_string(1), "3.0");
  std::ostringstream os;
  os << StochasticValue(1.0, 0.5);
  EXPECT_NE(os.str().find("±"), std::string::npos);
}

TEST(StochasticValue, EqualityComparesBothFields) {
  EXPECT_EQ(StochasticValue(1.0, 0.5), StochasticValue(1.0, 0.5));
  EXPECT_NE(StochasticValue(1.0, 0.5), StochasticValue(1.0, 0.4));
  EXPECT_NE(StochasticValue(1.0, 0.5), StochasticValue(2.0, 0.5));
}

}  // namespace
}  // namespace sspred::stoch
