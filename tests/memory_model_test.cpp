// Tests for the memory-thrashing model: the mechanism behind the paper's
// "for problem sizes which fit within main memory" boundary (Fig. 9).
#include <gtest/gtest.h>

#include "machine/machine.hpp"
#include "predict/sor_model.hpp"
#include "sor/distributed.hpp"

namespace sspred {
namespace {

TEST(MemoryModel, NoSlowdownInsideMemory) {
  machine::MachineSpec spec = machine::sparc10_spec();
  EXPECT_DOUBLE_EQ(spec.slowdown_factor(0.0), 1.0);
  EXPECT_DOUBLE_EQ(spec.slowdown_factor(spec.memory_elements), 1.0);
  EXPECT_DOUBLE_EQ(spec.slowdown_factor(spec.memory_elements * 0.99), 1.0);
}

TEST(MemoryModel, LinearPenaltyBeyondMemory) {
  machine::MachineSpec spec;
  spec.memory_elements = 1.0e6;
  spec.thrash_slope = 4.0;
  EXPECT_DOUBLE_EQ(spec.slowdown_factor(1.5e6), 3.0);   // 1 + 4*0.5
  EXPECT_DOUBLE_EQ(spec.slowdown_factor(2.0e6), 5.0);   // 1 + 4*1
  EXPECT_DOUBLE_EQ(spec.slowdown_factor(100.0e6), 16.0);  // capped
}

TEST(MemoryModel, MachineElementWorkAppliesFactor) {
  machine::MachineSpec spec = machine::sparc10_spec();
  spec.memory_elements = 1.0e6;
  machine::Machine m(spec, machine::LoadTrace::constant(1.0));
  const double in_core = m.element_work(1'000.0, 0.5e6);
  const double thrashing = m.element_work(1'000.0, 2.0e6);
  EXPECT_DOUBLE_EQ(in_core, m.element_work(1'000.0));
  EXPECT_DOUBLE_EQ(thrashing, 5.0 * in_core);
}

TEST(MemoryModel, SorRunSlowsBeyondMemory) {
  sor::SorConfig cfg;
  cfg.n = 256;
  cfg.iterations = 5;
  cfg.real_numerics = false;

  cluster::PlatformSpec roomy = cluster::dedicated_platform(2);
  sim::Engine e1;
  cluster::Platform p1(e1, roomy, 3);
  const double t_fits = sor::run_distributed_sor(e1, p1, cfg).total_time;

  cluster::PlatformSpec tight = roomy;
  // Strip working set: 2*(130)*(258) ≈ 67k elements; force thrashing.
  for (auto& h : tight.hosts) h.machine.memory_elements = 30'000.0;
  sim::Engine e2;
  cluster::Platform p2(e2, tight, 3);
  const double t_thrash = sor::run_distributed_sor(e2, p2, cfg).total_time;

  EXPECT_GT(t_thrash, 2.0 * t_fits);
}

TEST(MemoryModel, PaperModelDivergesBeyondMemoryUnlessAccounted) {
  // In-memory: the plain model is fine. Beyond memory: the plain model
  // (paper behaviour) underpredicts; account_memory fixes it.
  cluster::PlatformSpec spec = cluster::dedicated_platform(2);
  for (auto& h : spec.hosts) h.machine.memory_elements = 30'000.0;

  sor::SorConfig cfg;
  cfg.n = 256;  // strip working set ~67k elements >> 30k: thrashing
  cfg.iterations = 5;
  cfg.real_numerics = false;

  const std::vector<stoch::StochasticValue> loads(2, {1.0});

  predict::SorModelOptions paper_opts;
  paper_opts.account_memory = false;
  const predict::SorStructuralModel paper_model(spec, cfg, paper_opts);
  const double paper_pred =
      paper_model.predict_point(paper_model.make_env(loads, {1.0}));

  predict::SorModelOptions mem_opts;
  mem_opts.account_memory = true;
  const predict::SorStructuralModel mem_model(spec, cfg, mem_opts);
  const double mem_pred =
      mem_model.predict_point(mem_model.make_env(loads, {1.0}));

  sim::Engine engine;
  cluster::Platform platform(engine, spec, 7);
  const double actual =
      sor::run_distributed_sor(engine, platform, cfg).total_time;

  EXPECT_LT(paper_pred, 0.6 * actual);             // plain model way under
  EXPECT_NEAR(mem_pred, actual, 0.05 * actual);    // accounted model tracks
}

TEST(MemoryModel, AccountedModelIsNoopInsideMemory) {
  const cluster::PlatformSpec spec = cluster::dedicated_platform(4);
  sor::SorConfig cfg;
  cfg.n = 600;
  const std::vector<stoch::StochasticValue> loads(4, {1.0});
  predict::SorModelOptions on;
  on.account_memory = true;
  predict::SorModelOptions off;
  off.account_memory = false;
  const predict::SorStructuralModel m_on(spec, cfg, on);
  const predict::SorStructuralModel m_off(spec, cfg, off);
  EXPECT_DOUBLE_EQ(m_on.predict_point(m_on.make_env(loads, {1.0})),
                   m_off.predict_point(m_off.make_env(loads, {1.0})));
}

}  // namespace
}  // namespace sspred
