// Unit + property tests for the Table-2 stochastic arithmetic, including
// Monte-Carlo cross-validation of the closed forms.
#include <gtest/gtest.h>

#include <cmath>

#include "stoch/arithmetic.hpp"
#include "stoch/montecarlo.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace sspred::stoch {
namespace {

TEST(PointOps, AddPointShiftsMeanOnly) {
  const StochasticValue v(10.0, 2.0);
  const StochasticValue r = add_point(v, 5.0);
  EXPECT_DOUBLE_EQ(r.mean(), 15.0);
  EXPECT_DOUBLE_EQ(r.halfwidth(), 2.0);
}

TEST(PointOps, ScaleScalesBoth) {
  const StochasticValue v(10.0, 2.0);
  const StochasticValue r = scale(v, 3.0);
  EXPECT_DOUBLE_EQ(r.mean(), 30.0);
  EXPECT_DOUBLE_EQ(r.halfwidth(), 6.0);
}

TEST(PointOps, NegativeScaleKeepsHalfwidthPositive) {
  const StochasticValue r = scale({10.0, 2.0}, -2.0);
  EXPECT_DOUBLE_EQ(r.mean(), -20.0);
  EXPECT_DOUBLE_EQ(r.halfwidth(), 4.0);
}

TEST(Add, RelatedIsConservativeSum) {
  const StochasticValue r =
      add({10.0, 2.0}, {5.0, 1.0}, Dependence::kRelated);
  EXPECT_DOUBLE_EQ(r.mean(), 15.0);
  EXPECT_DOUBLE_EQ(r.halfwidth(), 3.0);
}

TEST(Add, UnrelatedIsRss) {
  const StochasticValue r =
      add({10.0, 3.0}, {5.0, 4.0}, Dependence::kUnrelated);
  EXPECT_DOUBLE_EQ(r.mean(), 15.0);
  EXPECT_DOUBLE_EQ(r.halfwidth(), 5.0);  // sqrt(9+16)
}

TEST(Add, RelatedNeverNarrowerThanUnrelated) {
  const StochasticValue a(3.0, 1.5);
  const StochasticValue b(7.0, 2.5);
  EXPECT_GE(add(a, b, Dependence::kRelated).halfwidth(),
            add(a, b, Dependence::kUnrelated).halfwidth());
}

TEST(Sub, MeansSubtractSpreadsCombine) {
  const StochasticValue r =
      sub({10.0, 3.0}, {4.0, 4.0}, Dependence::kUnrelated);
  EXPECT_DOUBLE_EQ(r.mean(), 6.0);
  EXPECT_DOUBLE_EQ(r.halfwidth(), 5.0);
}

TEST(Sum, SequenceAccumulates) {
  const std::vector<StochasticValue> xs{{1.0, 1.0}, {2.0, 1.0}, {3.0, 1.0}};
  const StochasticValue rel = sum(xs, Dependence::kRelated);
  EXPECT_DOUBLE_EQ(rel.mean(), 6.0);
  EXPECT_DOUBLE_EQ(rel.halfwidth(), 3.0);
  const StochasticValue unrel = sum(xs, Dependence::kUnrelated);
  EXPECT_DOUBLE_EQ(unrel.mean(), 6.0);
  EXPECT_NEAR(unrel.halfwidth(), std::sqrt(3.0), 1e-12);
}

TEST(Mul, RelatedMatchesPaperFormula) {
  // (Xi ± ai)(Xj ± aj) = XiXj ± (ai Xj + aj Xi + ai aj)
  const StochasticValue r =
      mul({10.0, 1.0}, {20.0, 2.0}, Dependence::kRelated);
  EXPECT_DOUBLE_EQ(r.mean(), 200.0);
  EXPECT_DOUBLE_EQ(r.halfwidth(), 1.0 * 20.0 + 2.0 * 10.0 + 1.0 * 2.0);
}

TEST(Mul, UnrelatedMatchesRssRelativeForm) {
  const StochasticValue r =
      mul({10.0, 1.0}, {20.0, 2.0}, Dependence::kUnrelated);
  EXPECT_DOUBLE_EQ(r.mean(), 200.0);
  EXPECT_NEAR(r.halfwidth(), 200.0 * std::sqrt(0.01 + 0.01), 1e-12);
}

TEST(Mul, ZeroMeanOperandGivesZeroPoint) {
  const StochasticValue r =
      mul({0.0, 1.0}, {5.0, 1.0}, Dependence::kUnrelated);
  EXPECT_TRUE(r.is_point());
  EXPECT_DOUBLE_EQ(r.mean(), 0.0);
}

TEST(Mul, PointTimesStochasticMatchesScale) {
  const StochasticValue v(10.0, 2.0);
  for (auto dep : {Dependence::kRelated, Dependence::kUnrelated}) {
    const StochasticValue r = mul(StochasticValue(3.0), v, dep);
    EXPECT_DOUBLE_EQ(r.mean(), 30.0);
    EXPECT_DOUBLE_EQ(r.halfwidth(), 6.0);
  }
}

TEST(Inverse, DeltaMethodForm) {
  const StochasticValue r = inverse({4.0, 0.8});
  EXPECT_DOUBLE_EQ(r.mean(), 0.25);
  EXPECT_DOUBLE_EQ(r.halfwidth(), 0.8 / 16.0);
}

TEST(Inverse, PointInverseIsExact) {
  const StochasticValue r = inverse(StochasticValue(5.0));
  EXPECT_TRUE(r.is_point());
  EXPECT_DOUBLE_EQ(r.mean(), 0.2);
}

TEST(Inverse, RangeSpanningZeroThrows) {
  EXPECT_THROW((void)inverse({0.5, 1.0}), support::Error);
  EXPECT_THROW((void)inverse({0.0, 0.0}), support::Error);
  // Range endpoint exactly at zero counts as spanning it.
  EXPECT_THROW((void)inverse({1.0, 1.0}), support::Error);
}

TEST(Inverse, RangeSpanningZeroErrorNamesTheRange) {
  try {
    (void)inverse({0.5, 1.0});
    FAIL() << "expected Error";
  } catch (const support::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("spans zero"), std::string::npos);
    EXPECT_NE(what.find("-0.5"), std::string::npos);  // range lower bound
    EXPECT_NE(what.find("1.5"), std::string::npos);   // range upper bound
  }
}

TEST(Div, DenominatorSpanningZeroThrowsNamingBothOperands) {
  const StochasticValue x(10.0, 1.0);
  EXPECT_THROW((void)div(x, {0.5, 1.0}, Dependence::kUnrelated),
               support::Error);
  try {
    (void)div(x, {0.5, 1.0}, Dependence::kRelated);
    FAIL() << "expected Error";
  } catch (const support::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("divide"), std::string::npos);
    EXPECT_NE(what.find("10"), std::string::npos);  // numerator appears too
    EXPECT_NE(what.find("spans zero"), std::string::npos);
  }
}

TEST(Div, MatchesMulByInverse) {
  const StochasticValue x(10.0, 1.0);
  const StochasticValue y(4.0, 0.4);
  const StochasticValue d = div(x, y, Dependence::kUnrelated);
  const StochasticValue m = mul(x, inverse(y), Dependence::kUnrelated);
  EXPECT_DOUBLE_EQ(d.mean(), m.mean());
  EXPECT_DOUBLE_EQ(d.halfwidth(), m.halfwidth());
  EXPECT_DOUBLE_EQ(d.mean(), 2.5);
}

TEST(Operators, UnrelatedSugar) {
  const StochasticValue a(6.0, 3.0);
  const StochasticValue b(8.0, 6.0);  // range [2, 14]: safely invertible
  EXPECT_DOUBLE_EQ((a + b).halfwidth(), std::sqrt(45.0));
  EXPECT_DOUBLE_EQ((a - b).mean(), -2.0);
  EXPECT_DOUBLE_EQ((a * b).mean(), 48.0);
  EXPECT_DOUBLE_EQ((a / b).mean(), 0.75);
  EXPECT_DOUBLE_EQ((-a).mean(), -6.0);
  EXPECT_DOUBLE_EQ((-a).halfwidth(), 3.0);
}

// --- Monte-Carlo cross-validation of the closed forms. -------------------

struct McCase {
  double mx, ax, my, ay;
};

class UnrelatedAddMc : public ::testing::TestWithParam<McCase> {};

TEST_P(UnrelatedAddMc, ClosedFormMatchesSampling) {
  const auto& c = GetParam();
  const StochasticValue x(c.mx, c.ax);
  const StochasticValue y(c.my, c.ay);
  support::Rng rng(99);
  const StochasticValue closed = add(x, y, Dependence::kUnrelated);
  const StochasticValue empirical = empirical_combine(
      x, y, [](double a, double b) { return a + b; }, rng, 200'000);
  EXPECT_NEAR(closed.mean(), empirical.mean(), 0.02 * (1.0 + std::abs(closed.mean())));
  EXPECT_NEAR(closed.halfwidth(), empirical.halfwidth(),
              0.03 * (1.0 + closed.halfwidth()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, UnrelatedAddMc,
    ::testing::Values(McCase{10, 2, 5, 1}, McCase{0, 1, 0, 1},
                      McCase{-3, 0.5, 8, 2}, McCase{100, 10, -50, 5}));

class UnrelatedMulMc : public ::testing::TestWithParam<McCase> {};

TEST_P(UnrelatedMulMc, ClosedFormMatchesSamplingForSmallRelativeSpread) {
  const auto& c = GetParam();
  const StochasticValue x(c.mx, c.ax);
  const StochasticValue y(c.my, c.ay);
  support::Rng rng(101);
  const StochasticValue closed = mul(x, y, Dependence::kUnrelated);
  const StochasticValue empirical = empirical_combine(
      x, y, [](double a, double b) { return a * b; }, rng, 200'000);
  EXPECT_NEAR(closed.mean(), empirical.mean(),
              0.02 * std::abs(closed.mean()));
  EXPECT_NEAR(closed.halfwidth(), empirical.halfwidth(),
              0.05 * closed.halfwidth());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, UnrelatedMulMc,
    ::testing::Values(McCase{10, 0.5, 20, 1}, McCase{100, 5, 3, 0.1},
                      McCase{12, 0.6, 0.48, 0.05}));

TEST(RelatedAddMc, ConservativeFormBoundsComonotonicSampling) {
  // With perfectly coupled operands the true spread is exactly a+b; the
  // related rule reproduces it.
  const StochasticValue x(10.0, 2.0);
  const StochasticValue y(5.0, 1.0);
  support::Rng rng(103);
  const StochasticValue closed = add(x, y, Dependence::kRelated);
  const StochasticValue empirical = empirical_combine_related(
      x, y, [](double a, double b) { return a + b; }, rng, 200'000);
  EXPECT_NEAR(closed.mean(), empirical.mean(), 0.05);
  EXPECT_NEAR(closed.halfwidth(), empirical.halfwidth(), 0.05);
}

TEST(DivMc, ClosedFormTracksSampling) {
  const StochasticValue x(10.0, 0.6);
  const StochasticValue y(0.5, 0.04);
  support::Rng rng(107);
  const StochasticValue closed = div(x, y, Dependence::kUnrelated);
  const StochasticValue empirical = empirical_combine(
      x, y, [](double a, double b) { return a / b; }, rng, 200'000);
  EXPECT_NEAR(closed.mean(), empirical.mean(), 0.02 * closed.mean());
  EXPECT_NEAR(closed.halfwidth(), empirical.halfwidth(),
              0.08 * closed.halfwidth());
}

TEST(Coverage, TwoSigmaRangeCoversNormalSamples) {
  const StochasticValue v(10.0, 2.0);
  support::Rng rng(109);
  EXPECT_NEAR(empirical_coverage(v, v, rng, 200'000), 0.9545, 0.01);
}

// Property sweep: halfwidth non-negativity and mean exactness for every
// op/dependence combination.
class ArithmeticPropertyTest
    : public ::testing::TestWithParam<std::tuple<McCase, Dependence>> {};

TEST_P(ArithmeticPropertyTest, MeansExactHalfwidthsNonNegative) {
  const auto& [c, dep] = GetParam();
  const StochasticValue x(c.mx, c.ax);
  const StochasticValue y(c.my, c.ay);

  const auto s = add(x, y, dep);
  EXPECT_DOUBLE_EQ(s.mean(), c.mx + c.my);
  EXPECT_GE(s.halfwidth(), 0.0);

  const auto d = sub(x, y, dep);
  EXPECT_DOUBLE_EQ(d.mean(), c.mx - c.my);
  EXPECT_GE(d.halfwidth(), 0.0);

  const auto m = mul(x, y, dep);
  EXPECT_DOUBLE_EQ(m.mean(), c.mx * c.my);
  EXPECT_GE(m.halfwidth(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ArithmeticPropertyTest,
    ::testing::Combine(
        ::testing::Values(McCase{10, 2, 5, 1}, McCase{-10, 2, 5, 1},
                          McCase{10, 2, -5, 1}, McCase{-10, 2, -5, 1},
                          McCase{1e6, 10, 1e-6, 1e-8}, McCase{3, 0, 4, 0}),
        ::testing::Values(Dependence::kRelated, Dependence::kUnrelated)));

}  // namespace
}  // namespace sspred::stoch
