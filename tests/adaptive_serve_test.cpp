// Serving-layer tests for adaptive-precision Monte-Carlo requests
// (PredictRequest::precision / precision_relative / min_trials and the
// PredictResult mc_trials / mc_ci_halfwidth / precision_met stamps).
//
// The serve contracts on top of the engine-level ones (sequential_test):
//   * precision requests stop early, stamp the achieved CI width, and
//     feed the mc_trials_executed / mc_trials_saved metrics;
//   * an unreachable target at the max-trial clamp is a STRUCTURED
//     partial-precision outcome (kOk + precision_met=false), not an
//     error;
//   * mixed fixed-count and precision-target batches fuse, and the fused
//     service is bit-identical to an unfused one, field for field;
//   * precision requests above mc_chunk_trials run solo-adaptive instead
//     of the chunked fan-out;
//   * concurrent mixed submissions are race-free (AdaptiveServe is in
//     the CI ThreadSanitizer regex).
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "cluster/platform.hpp"
#include "serve/service.hpp"
#include "stoch/stochastic_value.hpp"

namespace sspred::serve {
namespace {

using stoch::StochasticValue;

ModelSpec small_spec(std::size_t n = 200, std::size_t hosts = 2) {
  ModelSpec spec;
  spec.app = ModelSpec::App::kSor;
  spec.platform = cluster::dedicated_platform(hosts);
  spec.config.n = n;
  spec.config.iterations = 5;
  return spec;
}

/// Monte-Carlo request `i` with distinct bindings; precision > 0 makes
/// it adaptive with `trials` as the max clamp.
PredictRequest mc_request(std::size_t i, std::size_t trials,
                          double precision = 0.0, bool relative = false) {
  PredictRequest request;
  request.model_id = "sor";
  request.mode = Mode::kMonteCarlo;
  for (std::size_t h = 0; h < 2; ++h) {
    request.loads.emplace_back(0.5 + 0.01 * double(i) + 0.05 * double(h),
                               0.05 + 0.002 * double(i));
  }
  request.trials = trials;
  request.seed = 100 + i;
  request.precision = precision;
  request.precision_relative = relative;
  return request;
}

TEST(AdaptiveServe, PrecisionRequestStopsEarlyAndStampsResult) {
  ServiceOptions options;
  options.workers = 1;
  PredictionService service(options);
  service.register_model("sor", small_spec());

  // A loose relative target on a mild model: far fewer than 2000 trials.
  auto future = service.submit(mc_request(0, 2'000, 0.05, true));
  const PredictResult r = future.get();
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.precision_met);
  EXPECT_GE(r.mc_trials, 2u);
  EXPECT_LT(r.mc_trials, 2'000u);
  EXPECT_GT(r.mc_ci_halfwidth, 0.0);
  EXPECT_LE(r.mc_ci_halfwidth, 0.05 * std::abs(r.value.mean()));
  service.drain();
  EXPECT_EQ(service.metrics().counter("mc_trials_saved").value(),
            2'000u - r.mc_trials);
}

TEST(AdaptiveServe, FixedRequestStampsTrialsAndWidthToo) {
  PredictionService service;
  service.register_model("sor", small_spec());
  const PredictResult r = service.submit(mc_request(1, 600)).get();
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.precision_met);
  EXPECT_EQ(r.mc_trials, 600u);
  EXPECT_GT(r.mc_ci_halfwidth, 0.0);
  service.drain();
  EXPECT_EQ(service.metrics().counter("mc_trials_saved").value(), 0u);
}

TEST(AdaptiveServe, UnreachableTargetIsStructuredPartialPrecision) {
  PredictionService service;
  service.register_model("sor", small_spec());
  // Absurd absolute target with a small max clamp: must clamp, not error.
  const PredictResult r = service.submit(mc_request(2, 256, 1e-12)).get();
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_FALSE(r.precision_met);
  EXPECT_EQ(r.mc_trials, 256u);
  EXPECT_GT(r.mc_ci_halfwidth, 1e-12);
}

TEST(AdaptiveServe, MixedFixedAndPrecisionBatchFusedMatchesUnfused) {
  ServiceOptions fused_options;
  fused_options.workers = 2;
  fused_options.start_paused = true;
  ServiceOptions solo_options = fused_options;
  solo_options.enable_fusion = false;
  PredictionService fused(fused_options);
  PredictionService solo(solo_options);
  fused.register_model("sor", small_spec());
  solo.register_model("sor", small_spec());

  // Alternate fixed-count and precision-target requests with unequal
  // trial clamps: since ISSUE-10 these share one adaptive fused sweep.
  const auto make = [](std::size_t i) {
    return i % 2 == 0 ? mc_request(i, 600)
                      : mc_request(i, 1'500, 0.04, true);
  };
  constexpr std::size_t kRequests = 24;
  std::vector<std::future<PredictResult>> ff, sf;
  for (std::size_t i = 0; i < kRequests; ++i) {
    ff.push_back(fused.submit(make(i)));
    sf.push_back(solo.submit(make(i)));
  }
  fused.resume();
  solo.resume();
  for (std::size_t i = 0; i < kRequests; ++i) {
    const PredictResult a = ff[i].get();
    const PredictResult b = sf[i].get();
    ASSERT_TRUE(a.ok()) << a.error;
    ASSERT_TRUE(b.ok()) << b.error;
    EXPECT_DOUBLE_EQ(a.value.mean(), b.value.mean()) << i;
    EXPECT_DOUBLE_EQ(a.value.halfwidth(), b.value.halfwidth()) << i;
    EXPECT_EQ(a.mc_trials, b.mc_trials) << i;
    EXPECT_DOUBLE_EQ(a.mc_ci_halfwidth, b.mc_ci_halfwidth) << i;
    EXPECT_EQ(a.precision_met, b.precision_met) << i;
    if (i % 2 == 0) {
      EXPECT_EQ(a.mc_trials, 600u) << i;
    } else {
      EXPECT_TRUE(a.precision_met) << i;
      EXPECT_LT(a.mc_trials, 1'500u) << i;
    }
  }
  EXPECT_GT(fused.metrics().counter("requests_fused").value(), 0u);
  EXPECT_EQ(solo.metrics().counter("requests_fused").value(), 0u);
}

TEST(AdaptiveServe, IdenticalPrecisionRequestsCoalesce) {
  ServiceOptions options;
  options.workers = 1;
  options.start_paused = true;
  PredictionService service(options);
  service.register_model("sor", small_spec());
  std::vector<std::future<PredictResult>> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(service.submit(mc_request(5, 1'000, 0.05, true)));
  }
  service.resume();
  std::vector<PredictResult> results;
  for (auto& f : futures) results.push_back(f.get());
  for (const PredictResult& r : results) {
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_DOUBLE_EQ(r.value.mean(), results[0].value.mean());
    EXPECT_EQ(r.mc_trials, results[0].mc_trials);
  }
  EXPECT_GT(service.metrics().counter("requests_coalesced").value(), 0u);
}

TEST(AdaptiveServe, LargePrecisionRequestRunsSoloNotChunked) {
  ServiceOptions options;
  options.workers = 4;  // chunk fan-out would engage for fixed requests
  PredictionService service(options);
  service.register_model("sor", small_spec());
  const std::size_t cap = options.mc_chunk_trials * 4;
  const PredictResult r =
      service.submit(mc_request(3, cap, 0.20, true)).get();
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.precision_met);
  EXPECT_LE(r.mc_trials, cap);
  service.drain();
  EXPECT_EQ(service.metrics().counter("mc_chunks_executed").value(), 0u);
  // The histogram saw the run.
  bool found = false;
  for (const auto& sample : service.metrics().snapshot()) {
    if (sample.name == "mc_trials_executed") {
      found = true;
      EXPECT_GE(sample.value, 1.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(AdaptiveServe, SameSeedReproducesTrialCountAcrossServices) {
  const auto run = [] {
    PredictionService service;
    service.register_model("sor", small_spec());
    return service.submit(mc_request(4, 4'000, 0.03, true)).get();
  };
  const PredictResult a = run();
  const PredictResult b = run();
  ASSERT_TRUE(a.ok()) << a.error;
  EXPECT_EQ(a.mc_trials, b.mc_trials);
  EXPECT_DOUBLE_EQ(a.value.mean(), b.value.mean());
  EXPECT_DOUBLE_EQ(a.mc_ci_halfwidth, b.mc_ci_halfwidth);
}

TEST(AdaptiveServe, ConcurrentMixedSubmittersAreRaceFree) {
  // TSan stress: adaptive and fixed Monte-Carlo requests race the fused
  // dequeue scan; every future must resolve with a stamped result.
  ServiceOptions options;
  options.workers = 4;
  options.max_batch = 8;
  PredictionService service(options);
  service.register_model("sor", small_spec());

  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 40;
  std::atomic<std::size_t> resolved{0};
  std::vector<std::thread> submitters;
  for (std::size_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const std::size_t variant = (i % 3 == 0) ? 0 : t * kPerThread + i;
        const PredictRequest request =
            i % 2 == 0 ? mc_request(variant, 600)
                       : mc_request(variant, 1'200, 0.08, true);
        const PredictResult r = service.submit(request).get();
        EXPECT_TRUE(r.ok() || r.status == PredictResult::Status::kRejected)
            << r.error;
        if (r.ok()) {
          EXPECT_GE(r.mc_trials, 2u);
        }
        resolved.fetch_add(1);
      }
    });
  }
  for (auto& t : submitters) t.join();
  service.drain();
  EXPECT_EQ(resolved.load(), kThreads * kPerThread);
}

}  // namespace
}  // namespace sspred::serve
