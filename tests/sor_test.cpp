// Unit + integration tests for the SOR solvers: serial correctness,
// decomposition invariants, distributed == serial equivalence, timing
// instrumentation.
#include <gtest/gtest.h>

#include <cmath>

#include "sor/decomposition.hpp"
#include "sor/distributed.hpp"
#include "sor/serial.hpp"
#include "support/error.hpp"

namespace sspred::sor {
namespace {

TEST(SerialSor, ConvergesToAnalyticSolution) {
  SerialSor solver(33);
  solver.iterate(200);
  EXPECT_LT(solver.solution_error(), 2e-3);
  EXPECT_LT(solver.residual_norm(), 1e-5);
}

TEST(SerialSor, ResidualShrinksOverIterationBlocks) {
  // Over-relaxation is not monotone step-to-step, but each sizeable block
  // of iterations must shrink the residual substantially.
  SerialSor solver(25);
  solver.iterate(20);  // past the initial transient
  double prev = solver.residual_norm();
  for (int k = 0; k < 3; ++k) {
    solver.iterate(25);
    const double cur = solver.residual_norm();
    EXPECT_LT(cur, 0.5 * prev);
    prev = cur;
  }
}

TEST(SerialSor, OptimalOmegaBeatsGaussSeidel) {
  SerialSor fast(33);             // optimal omega
  SerialSor slow(33, 1.0);        // plain Gauss-Seidel
  fast.iterate(60);
  slow.iterate(60);
  EXPECT_LT(fast.residual_norm(), slow.residual_norm());
}

TEST(SerialSor, OptimalOmegaFormula) {
  EXPECT_NEAR(SerialSor::optimal_omega(100),
              2.0 / (1.0 + std::sin(M_PI / 101.0)), 1e-12);
  EXPECT_GT(SerialSor::optimal_omega(1000), 1.9);
}

TEST(SerialSor, InvalidParametersThrow) {
  EXPECT_THROW(SerialSor(1), support::Error);
  EXPECT_THROW(SerialSor(10, 2.5), support::Error);
}

TEST(SerialSor, BoundaryStaysZero) {
  SerialSor solver(10);
  solver.iterate(5);
  for (std::size_t j = 0; j < 12; ++j) {
    EXPECT_DOUBLE_EQ(solver.raw_row(0)[j], 0.0);
    EXPECT_DOUBLE_EQ(solver.raw_row(11)[j], 0.0);
  }
}

TEST(StripDecomposition, UniformSpreadsRemainder) {
  const auto d = StripDecomposition::uniform(10, 3);
  EXPECT_EQ(d.rows(0), 4u);
  EXPECT_EQ(d.rows(1), 3u);
  EXPECT_EQ(d.rows(2), 3u);
  EXPECT_EQ(d.begin(0), 0u);
  EXPECT_EQ(d.end(0), 4u);
  EXPECT_EQ(d.begin(2), 7u);
  EXPECT_EQ(d.end(2), 10u);
  EXPECT_DOUBLE_EQ(d.elements(0), 40.0);
}

class DecompositionSweep
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(DecompositionSweep, RowsPartitionTheGrid) {
  const auto [n, ranks] = GetParam();
  const auto d = StripDecomposition::uniform(n, ranks);
  std::size_t total = 0;
  for (std::size_t r = 0; r < ranks; ++r) {
    EXPECT_EQ(d.end(r) - d.begin(r), d.rows(r));
    EXPECT_GE(d.rows(r), 1u);
    if (r > 0) {
      EXPECT_EQ(d.begin(r), d.end(r - 1));
    }
    total += d.rows(r);
  }
  EXPECT_EQ(total, n);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DecompositionSweep,
    ::testing::Values(std::pair<std::size_t, std::size_t>{8, 1},
                      std::pair<std::size_t, std::size_t>{8, 8},
                      std::pair<std::size_t, std::size_t>{100, 4},
                      std::pair<std::size_t, std::size_t>{101, 4},
                      std::pair<std::size_t, std::size_t>{1000, 7}));

TEST(StripDecomposition, WeightedFollowsCapacities) {
  const std::vector<double> caps{1.0, 2.0, 1.0};
  const auto d = StripDecomposition::weighted(100, caps);
  EXPECT_EQ(d.rows(0) + d.rows(1) + d.rows(2), 100u);
  EXPECT_NEAR(static_cast<double>(d.rows(1)), 50.0, 1.0);
  EXPECT_GT(d.rows(1), d.rows(0));
}

TEST(StripDecomposition, WeightedGuaranteesFloor) {
  const std::vector<double> caps{1000.0, 0.001};
  const auto d = StripDecomposition::weighted(10, caps);
  EXPECT_GE(d.rows(1), 1u);
  EXPECT_EQ(d.rows(0) + d.rows(1), 10u);
}

TEST(StripDecomposition, ValidationErrors) {
  EXPECT_THROW(StripDecomposition(10, {5, 4}), support::Error);   // sum != n
  EXPECT_THROW(StripDecomposition(10, {10, 0}), support::Error);  // zero rows
  const std::vector<double> none;
  EXPECT_THROW((void)StripDecomposition::weighted(10, none), support::Error);
}

struct DistributedFixture {
  sim::Engine engine;
  cluster::Platform platform;

  explicit DistributedFixture(std::size_t ranks, std::uint64_t seed = 42)
      : platform(engine, cluster::dedicated_platform(ranks), seed) {}
};

TEST(DistributedSor, MatchesSerialBitwise) {
  SorConfig cfg;
  cfg.n = 24;
  cfg.iterations = 15;
  cfg.gather_solution = true;
  DistributedFixture f(3);
  const SorResult result = run_distributed_sor(f.engine, f.platform, cfg);
  ASSERT_EQ(result.solution.size(), cfg.n * cfg.n);

  SerialSor serial(cfg.n);
  serial.iterate(cfg.iterations);
  for (std::size_t i = 0; i < cfg.n; ++i) {
    for (std::size_t j = 0; j < cfg.n; ++j) {
      EXPECT_DOUBLE_EQ(result.solution[i * cfg.n + j], serial.at(i, j))
          << "mismatch at (" << i << "," << j << ")";
    }
  }
  EXPECT_NEAR(result.residual, serial.residual_norm(), 1e-12);
  EXPECT_NEAR(result.solution_error, serial.solution_error(), 1e-12);
}

class DistributedEquivalenceSweep
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DistributedEquivalenceSweep, AnyRankCountMatchesSerial) {
  const std::size_t ranks = GetParam();
  SorConfig cfg;
  cfg.n = 20;
  cfg.iterations = 8;
  cfg.gather_solution = true;
  sim::Engine engine;
  cluster::Platform platform(engine, cluster::dedicated_platform(ranks), 7);
  const SorResult result = run_distributed_sor(engine, platform, cfg);
  SerialSor serial(cfg.n);
  serial.iterate(cfg.iterations);
  double worst = 0.0;
  for (std::size_t i = 0; i < cfg.n; ++i) {
    for (std::size_t j = 0; j < cfg.n; ++j) {
      worst = std::max(worst,
                       std::abs(result.solution[i * cfg.n + j] - serial.at(i, j)));
    }
  }
  EXPECT_EQ(worst, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DistributedEquivalenceSweep,
                         ::testing::Values(1, 2, 4, 5));

TEST(DistributedSor, ProducesPositiveTimings) {
  SorConfig cfg;
  cfg.n = 64;
  cfg.iterations = 10;
  DistributedFixture f(4);
  const SorResult result = run_distributed_sor(f.engine, f.platform, cfg);
  EXPECT_GT(result.total_time, 0.0);
  ASSERT_EQ(result.ranks.size(), 4u);
  for (const auto& r : result.ranks) {
    ASSERT_EQ(r.iterations.size(), cfg.iterations);
    for (const auto& t : r.iterations) {
      EXPECT_GT(t.red_comp, 0.0);
      EXPECT_GT(t.black_comp, 0.0);
      EXPECT_GE(t.red_comm, 0.0);
      EXPECT_GE(t.black_comm, 0.0);
    }
  }
  // Per-iteration max-phase times sum to roughly the total.
  double acc = 0.0;
  for (std::size_t it = 0; it < cfg.iterations; ++it) {
    acc += result.iteration_time(it);
  }
  EXPECT_NEAR(acc, result.total_time, 0.35 * result.total_time);
}

TEST(DistributedSor, ProductionLoadSlowsRun) {
  SorConfig cfg;
  cfg.n = 256;  // compute-dominated so the load effect is visible
  cfg.iterations = 10;
  sim::Engine e1;
  cluster::Platform dedicated(e1, cluster::dedicated_platform(4), 3);
  const double t_ded = run_distributed_sor(e1, dedicated, cfg).total_time;

  sim::Engine e2;
  cluster::PlatformSpec loaded_spec = cluster::dedicated_platform(4);
  for (auto& h : loaded_spec.hosts) {
    h.load = cluster::platform1_load(/*center_only=*/true);  // ~0.48 avail
  }
  cluster::Platform loaded(e2, loaded_spec, 3);
  const double t_loaded = run_distributed_sor(e2, loaded, cfg).total_time;
  EXPECT_GT(t_loaded, 1.5 * t_ded);
}

TEST(DistributedSor, StartTimeOffsetsRun) {
  SorConfig cfg;
  cfg.n = 32;
  cfg.iterations = 5;
  DistributedFixture f(2);
  const SorResult result =
      run_distributed_sor(f.engine, f.platform, cfg, /*start_time=*/100.0);
  EXPECT_DOUBLE_EQ(result.start_time, 100.0);
  EXPECT_GT(f.engine.now(), 100.0);
  EXPECT_NEAR(result.total_time, f.engine.now() - 100.0, 1e-9);
}

TEST(DistributedSor, CustomDecompositionHonored) {
  SorConfig cfg;
  cfg.n = 30;
  cfg.iterations = 4;
  cfg.rows_per_rank = {20, 5, 5};
  cfg.gather_solution = true;
  DistributedFixture f(3);
  const SorResult result = run_distributed_sor(f.engine, f.platform, cfg);
  // Rank 0 carries 4x the rows of rank 1 -> its compute phases dominate.
  const auto& r0 = result.ranks[0].iterations[1];
  const auto& r1 = result.ranks[1].iterations[1];
  EXPECT_GT(r0.red_comp, 3.0 * r1.red_comp);
  // Still numerically correct.
  SerialSor serial(cfg.n);
  serial.iterate(cfg.iterations);
  EXPECT_DOUBLE_EQ(result.solution[15 * cfg.n + 15], serial.at(15, 15));
}

TEST(DistributedSor, SkewPropagatesAtMostPIterations) {
  // Paper Fig. 7: a delay on rank 0 retards neighbours with a lag.
  SorConfig cfg;
  cfg.n = 40;
  cfg.iterations = 12;
  cfg.rank0_initial_delay = 5.0;
  DistributedFixture f(4);
  const SorResult delayed = run_distributed_sor(f.engine, f.platform, cfg);

  SorConfig base_cfg = cfg;
  base_cfg.rank0_initial_delay = 0.0;
  DistributedFixture g(4);
  const SorResult base = run_distributed_sor(g.engine, g.platform, base_cfg);

  // The whole run is delayed by roughly the injected amount...
  EXPECT_NEAR(delayed.total_time, base.total_time + 5.0,
              0.2 * (base.total_time + 5.0));
  // ...and the wave reaches the far rank only after ~P iterations: by the
  // last iteration rank 3 is retarded, even though its first iterations
  // were not (it is 3 hops from the delayed rank 0).
  const double last_iter_end_base =
      base.ranks[3].iteration_end.back() - base.start_time;
  const double last_iter_end_delayed =
      delayed.ranks[3].iteration_end.back() - delayed.start_time;
  EXPECT_GT(last_iter_end_delayed, last_iter_end_base + 4.0);
}

TEST(DistributedSor, TimingOnlyModeMatchesVirtualTime) {
  SorConfig real_cfg;
  real_cfg.n = 48;
  real_cfg.iterations = 6;
  DistributedFixture f(3);
  const double t_real =
      run_distributed_sor(f.engine, f.platform, real_cfg).total_time;

  SorConfig fake_cfg = real_cfg;
  fake_cfg.real_numerics = false;
  DistributedFixture g(3);
  const double t_fake =
      run_distributed_sor(g.engine, g.platform, fake_cfg).total_time;
  EXPECT_DOUBLE_EQ(t_real, t_fake);
}

}  // namespace
}  // namespace sspred::sor
