// Tests for the Jacobi application (serial + distributed) and its
// structural model — the "second application" demonstrating generality.
#include <gtest/gtest.h>

#include "predict/sor_model.hpp"
#include "sor/jacobi.hpp"

namespace sspred::sor {
namespace {

TEST(SerialJacobi, ConvergesToAnalyticSolution) {
  SerialJacobi solver(25);
  solver.iterate(1'500);  // Jacobi converges slowly
  EXPECT_LT(solver.solution_error(), 5e-3);
  EXPECT_LT(solver.residual_norm(), 1e-3);
}

TEST(SerialJacobi, ResidualShrinks) {
  SerialJacobi solver(20);
  solver.iterate(10);
  const double early = solver.residual_norm();
  solver.iterate(200);
  EXPECT_LT(solver.residual_norm(), 0.5 * early);
}

TEST(DistributedJacobi, MatchesSerialBitwise) {
  JacobiConfig cfg;
  cfg.n = 24;
  cfg.iterations = 30;
  cfg.gather_solution = true;
  sim::Engine engine;
  cluster::Platform platform(engine, cluster::dedicated_platform(3), 5);
  const JacobiResult result =
      run_distributed_jacobi(engine, platform, cfg);
  ASSERT_EQ(result.solution.size(), cfg.n * cfg.n);

  SerialJacobi serial(cfg.n);
  serial.iterate(cfg.iterations);
  for (std::size_t i = 0; i < cfg.n; ++i) {
    for (std::size_t j = 0; j < cfg.n; ++j) {
      EXPECT_DOUBLE_EQ(result.solution[i * cfg.n + j], serial.at(i, j));
    }
  }
  EXPECT_NEAR(result.solution_error, serial.solution_error(), 1e-12);
}

class JacobiRankSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(JacobiRankSweep, AnyRankCountMatchesSerial) {
  JacobiConfig cfg;
  cfg.n = 16;
  cfg.iterations = 12;
  cfg.gather_solution = true;
  sim::Engine engine;
  cluster::Platform platform(engine, cluster::dedicated_platform(GetParam()),
                             7);
  const JacobiResult result =
      run_distributed_jacobi(engine, platform, cfg);
  SerialJacobi serial(cfg.n);
  serial.iterate(cfg.iterations);
  for (std::size_t i = 0; i < cfg.n; ++i) {
    for (std::size_t j = 0; j < cfg.n; ++j) {
      ASSERT_DOUBLE_EQ(result.solution[i * cfg.n + j], serial.at(i, j));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, JacobiRankSweep, ::testing::Values(1, 2, 4));

TEST(DistributedJacobi, RecordsTimings) {
  JacobiConfig cfg;
  cfg.n = 64;
  cfg.iterations = 8;
  cfg.real_numerics = false;
  sim::Engine engine;
  cluster::Platform platform(engine, cluster::dedicated_platform(4), 9);
  const JacobiResult result =
      run_distributed_jacobi(engine, platform, cfg);
  EXPECT_GT(result.total_time, 0.0);
  ASSERT_EQ(result.rank_timings.size(), 4u);
  for (const auto& rank : result.rank_timings) {
    ASSERT_EQ(rank.size(), cfg.iterations);
    for (const auto& [comp, comm] : rank) {
      EXPECT_GT(comp, 0.0);
      EXPECT_GE(comm, 0.0);
    }
  }
}

TEST(JacobiModel, DedicatedPredictionTracksSimulation) {
  const auto spec = cluster::dedicated_platform(4);
  JacobiConfig cfg;
  cfg.n = 600;
  cfg.iterations = 20;
  cfg.real_numerics = false;

  const predict::JacobiStructuralModel model(spec, cfg.n, cfg.iterations);
  const std::vector<stoch::StochasticValue> loads(4, {1.0});
  const double predicted =
      model.predict_point(model.make_env(loads, {1.0}));

  sim::Engine engine;
  cluster::Platform platform(engine, spec, 13);
  const double actual =
      run_distributed_jacobi(engine, platform, cfg).total_time;
  EXPECT_NEAR(predicted, actual, 0.05 * actual);
}

TEST(JacobiModel, StochasticLoadGivesStochasticPrediction) {
  const auto spec = cluster::platform1();
  const predict::JacobiStructuralModel model(spec, 400, 10);
  std::vector<stoch::StochasticValue> loads(
      4, stoch::StochasticValue(0.5, 0.1));
  const auto pred = model.predict(model.make_env(loads, {0.525, 0.12}));
  EXPECT_GT(pred.halfwidth(), 0.0);
  EXPECT_GT(pred.mean(), 0.0);
}

TEST(JacobiVsSor, JacobiHasLighterCommPerIteration) {
  // Same grid and iterations: SOR exchanges twice per iteration, Jacobi
  // once — on a dedicated platform Jacobi's per-iteration comm is lower.
  const std::size_t n = 256;
  const std::size_t iters = 10;

  sim::Engine e1;
  cluster::Platform p1(e1, cluster::dedicated_platform(4), 3);
  SorConfig scfg;
  scfg.n = n;
  scfg.iterations = iters;
  scfg.real_numerics = false;
  const SorResult sres = run_distributed_sor(e1, p1, scfg);

  sim::Engine e2;
  cluster::Platform p2(e2, cluster::dedicated_platform(4), 3);
  JacobiConfig jcfg;
  jcfg.n = n;
  jcfg.iterations = iters;
  jcfg.real_numerics = false;
  const JacobiResult jres = run_distributed_jacobi(e2, p2, jcfg);

  double sor_comm = 0.0;
  for (const auto& t : sres.ranks[1].iterations) {
    sor_comm += t.red_comm + t.black_comm;
  }
  double jac_comm = 0.0;
  for (const auto& [comp, comm] : jres.rank_timings[1]) jac_comm += comm;
  EXPECT_LT(jac_comm, 0.75 * sor_comm);
}

}  // namespace
}  // namespace sspred::sor
