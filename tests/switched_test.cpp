// Tests for the switched full-duplex fabric and its max-min fair
// allocation, plus the fabric-aware platform/model plumbing.
#include <gtest/gtest.h>

#include <vector>

#include "net/switched.hpp"
#include "predict/sor_model.hpp"
#include "sor/distributed.hpp"
#include "sor/serial.hpp"
#include "support/error.hpp"

namespace sspred::net {
namespace {

SwitchedSpec spec4() {
  SwitchedSpec s;
  s.hosts = 4;
  s.link_bandwidth = 1.0e6;  // 1 MB/s per direction for round numbers
  s.latency = 0.0;
  return s;
}

TEST(Switched, SingleTransferRunsAtLinkRate) {
  sim::Engine eng;
  SwitchedEthernet sw(eng, spec4());
  double done = -1.0;
  sw.send(0, 1, 1.0e6, [&] { done = eng.now(); });
  eng.run();
  EXPECT_NEAR(done, 1.0, 1e-6);
}

TEST(Switched, DisjointPairsDoNotContend) {
  // 0->1 and 2->3 share no link: both finish as if alone.
  sim::Engine eng;
  SwitchedEthernet sw(eng, spec4());
  std::vector<double> done;
  sw.send(0, 1, 1.0e6, [&] { done.push_back(eng.now()); });
  sw.send(2, 3, 1.0e6, [&] { done.push_back(eng.now()); });
  eng.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 1.0, 1e-6);
  EXPECT_NEAR(done[1], 1.0, 1e-6);
}

TEST(Switched, SharedEgressSplitsFairly) {
  // 0->1 and 0->2 share host 0's egress: each gets half.
  sim::Engine eng;
  SwitchedEthernet sw(eng, spec4());
  std::vector<double> done;
  sw.send(0, 1, 1.0e6, [&] { done.push_back(eng.now()); });
  sw.send(0, 2, 1.0e6, [&] { done.push_back(eng.now()); });
  eng.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 2.0, 1e-6);
  EXPECT_NEAR(done[1], 2.0, 1e-6);
}

TEST(Switched, SharedIngressSplitsFairly) {
  sim::Engine eng;
  SwitchedEthernet sw(eng, spec4());
  std::vector<double> done;
  sw.send(1, 0, 1.0e6, [&] { done.push_back(eng.now()); });
  sw.send(2, 0, 1.0e6, [&] { done.push_back(eng.now()); });
  eng.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 2.0, 1e-6);
}

TEST(Switched, FullDuplexDoesNotContend) {
  // 0->1 and 1->0 use opposite directions: both run at full rate.
  sim::Engine eng;
  SwitchedEthernet sw(eng, spec4());
  std::vector<double> done;
  sw.send(0, 1, 1.0e6, [&] { done.push_back(eng.now()); });
  sw.send(1, 0, 1.0e6, [&] { done.push_back(eng.now()); });
  eng.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 1.0, 1e-6);
  EXPECT_NEAR(done[1], 1.0, 1e-6);
}

TEST(Switched, MaxMinGivesBottleneckSharesAndSpareCapacity) {
  // Flows: A 0->1, B 0->2, C 3->2. Egress 0 carries {A,B}; ingress 2
  // carries {B,C}. Max-min: A=B=C=0.5 at first freeze... verify via
  // completion times of equal-size flows: all finish at 2.0, then none
  // remain. Now make C smaller so it finishes early and B speeds up.
  sim::Engine eng;
  SwitchedEthernet sw(eng, spec4());
  double a_done = -1.0;
  double b_done = -1.0;
  double c_done = -1.0;
  sw.send(0, 1, 1.0e6, [&] { a_done = eng.now(); });
  sw.send(0, 2, 1.0e6, [&] { b_done = eng.now(); });
  sw.send(3, 2, 0.25e6, [&] { c_done = eng.now(); });
  eng.run();
  // Phase 1 (all active): every link has <=2 flows, fair share 0.5 each.
  // C (0.25 MB at 0.5 MB/s) finishes at t=0.5.
  EXPECT_NEAR(c_done, 0.5, 1e-6);
  // A and B still split egress 0 at 0.5 each -> both finish at 2.0.
  EXPECT_NEAR(a_done, 2.0, 1e-6);
  EXPECT_NEAR(b_done, 2.0, 1e-6);
}

TEST(Switched, ValidationErrors) {
  sim::Engine eng;
  SwitchedEthernet sw(eng, spec4());
  EXPECT_THROW(sw.send(0, 0, 10.0, [] {}), support::Error);
  EXPECT_THROW(sw.send(0, 9, 10.0, [] {}), support::Error);
  EXPECT_THROW(sw.send(-1, 1, 10.0, [] {}), support::Error);
  EXPECT_THROW(sw.send(0, 1, 0.0, [] {}), support::Error);
}

TEST(SwitchedPlatform, RunsSorAndBeatsSharedSegmentOnComm) {
  sor::SorConfig cfg;
  cfg.n = 300;  // comm-visible configuration
  cfg.iterations = 10;
  cfg.real_numerics = false;

  cluster::PlatformSpec shared_spec = cluster::dedicated_platform(4);
  sim::Engine e1;
  cluster::Platform p1(e1, shared_spec, 3);
  const double t_shared = sor::run_distributed_sor(e1, p1, cfg).total_time;

  cluster::PlatformSpec switched_spec = shared_spec;
  switched_spec.fabric = cluster::FabricKind::kSwitched;
  sim::Engine e2;
  cluster::Platform p2(e2, switched_spec, 3);
  const double t_switched = sor::run_distributed_sor(e2, p2, cfg).total_time;

  EXPECT_LT(t_switched, t_shared);
}

TEST(SwitchedPlatform, SolutionUnaffectedByFabric) {
  sor::SorConfig cfg;
  cfg.n = 20;
  cfg.iterations = 6;
  cfg.gather_solution = true;
  cluster::PlatformSpec spec = cluster::dedicated_platform(3);
  spec.fabric = cluster::FabricKind::kSwitched;
  sim::Engine engine;
  cluster::Platform platform(engine, spec, 5);
  const auto result = sor::run_distributed_sor(engine, platform, cfg);
  sor::SerialSor serial(cfg.n);
  serial.iterate(cfg.iterations);
  for (std::size_t i = 0; i < cfg.n; ++i) {
    for (std::size_t j = 0; j < cfg.n; ++j) {
      ASSERT_DOUBLE_EQ(result.solution[i * cfg.n + j], serial.at(i, j));
    }
  }
}

TEST(SwitchedPlatform, EthernetAccessorGuarded) {
  cluster::PlatformSpec spec = cluster::dedicated_platform(2);
  spec.fabric = cluster::FabricKind::kSwitched;
  sim::Engine engine;
  cluster::Platform platform(engine, spec, 1);
  EXPECT_THROW((void)platform.ethernet(), support::Error);
}

TEST(SwitchedModel, DedicatedPredictionTracksSwitchedRun) {
  cluster::PlatformSpec spec = cluster::dedicated_platform(4);
  spec.fabric = cluster::FabricKind::kSwitched;
  sor::SorConfig cfg;
  cfg.n = 600;
  cfg.iterations = 15;
  cfg.real_numerics = false;

  const predict::SorStructuralModel model(spec, cfg);
  const std::vector<stoch::StochasticValue> loads(
      4, stoch::StochasticValue(1.0));
  const double predicted =
      model.predict_point(model.make_env(loads, {1.0}));

  sim::Engine engine;
  cluster::Platform platform(engine, spec, 7);
  const double actual =
      sor::run_distributed_sor(engine, platform, cfg).total_time;
  EXPECT_NEAR(predicted, actual, 0.03 * actual);
}

}  // namespace
}  // namespace sspred::net
