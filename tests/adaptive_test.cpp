// Tests for solve-to-tolerance, host-subset selection and adaptive
// rebalancing.
#include <gtest/gtest.h>

#include <numeric>

#include "predict/host_selection.hpp"
#include "sor/distributed.hpp"
#include "sor/serial.hpp"
#include "support/error.hpp"

namespace sspred {
namespace {

// --- Solve to tolerance ------------------------------------------------

TEST(Tolerance, SerialStopsWhenConverged) {
  sor::SerialSor solver(33);
  const std::size_t iters = solver.iterate_to_tolerance(1e-4, 2'000, 10);
  EXPECT_LT(solver.residual_norm(), 1e-4);
  EXPECT_LT(iters, 2'000u);
  EXPECT_GT(iters, 10u);
}

TEST(Tolerance, EstimatorTracksActualIterations) {
  for (const std::size_t n : {25, 51, 101}) {
    sor::SerialSor solver(n);
    const std::size_t actual = solver.iterate_to_tolerance(1e-5, 5'000, 1);
    const std::size_t estimated =
        sor::estimated_iterations_to_tolerance(n, 1e-5);
    EXPECT_GT(estimated, actual / 2) << "n=" << n;
    EXPECT_LT(estimated, actual * 2 + 20) << "n=" << n;
  }
}

TEST(Tolerance, EstimatorGrowsWithNAndPrecision) {
  EXPECT_GT(sor::estimated_iterations_to_tolerance(200, 1e-6),
            sor::estimated_iterations_to_tolerance(100, 1e-6));
  EXPECT_GT(sor::estimated_iterations_to_tolerance(100, 1e-8),
            sor::estimated_iterations_to_tolerance(100, 1e-4));
  EXPECT_THROW((void)sor::estimated_iterations_to_tolerance(100, 0.0),
               support::Error);
}

TEST(Tolerance, DistributedStopsEarlyAndMatchesSerial) {
  sor::SorConfig cfg;
  cfg.n = 33;
  cfg.iterations = 2'000;
  cfg.tolerance = 1e-4;
  cfg.convergence_interval = 10;
  cfg.gather_solution = true;
  sim::Engine engine;
  cluster::Platform platform(engine, cluster::dedicated_platform(3), 5);
  const auto result = sor::run_distributed_sor(engine, platform, cfg);
  EXPECT_LT(result.iterations_run, 2'000u);
  EXPECT_LT(result.residual, 1e-4);
  // Identical to the serial solver run for the same iteration count.
  sor::SerialSor serial(cfg.n);
  serial.iterate(result.iterations_run);
  for (std::size_t i = 0; i < cfg.n; ++i) {
    for (std::size_t j = 0; j < cfg.n; ++j) {
      ASSERT_DOUBLE_EQ(result.solution[i * cfg.n + j], serial.at(i, j));
    }
  }
}

TEST(Tolerance, RequiresRealNumerics) {
  sor::SorConfig cfg;
  cfg.n = 16;
  cfg.iterations = 100;
  cfg.tolerance = 1e-3;
  cfg.real_numerics = false;
  sim::Engine engine;
  cluster::Platform platform(engine, cluster::dedicated_platform(2), 5);
  EXPECT_THROW((void)sor::run_distributed_sor(engine, platform, cfg),
               support::Error);
}

// --- Host-subset selection ----------------------------------------------

std::vector<stoch::StochasticValue> quiet_loads(double slow_host_load) {
  return {stoch::StochasticValue(slow_host_load, 0.05),
          stoch::StochasticValue(0.92, 0.03),
          stoch::StochasticValue(0.92, 0.03),
          stoch::StochasticValue(0.92, 0.03)};
}

TEST(HostSelection, EnumeratesAllSubsets) {
  const auto spec = cluster::platform1();
  sor::SorConfig cfg;
  cfg.n = 400;
  const auto plans = predict::rank_host_subsets(
      spec, cfg, quiet_loads(0.48), {0.525, 0.12},
      predict::PlanMetric::kExpectedTime);
  EXPECT_EQ(plans.size(), 15u);  // 2^4 - 1
  // Sorted best-first.
  for (std::size_t i = 1; i < plans.size(); ++i) {
    EXPECT_LE(plans[i - 1].score, plans[i].score);
  }
}

TEST(HostSelection, DropsTheLoadedSlowHost) {
  // A Sparc-2 at 0.48 availability only hurts: the best plan excludes it.
  const auto spec = cluster::platform1();
  sor::SorConfig cfg;
  cfg.n = 1000;
  cfg.iterations = 15;
  const auto best = predict::select_hosts(
      spec, cfg, quiet_loads(0.48), {0.525, 0.12},
      predict::PlanMetric::kExpectedTime);
  for (std::size_t h : best.hosts) {
    EXPECT_NE(h, 0u) << "plan should not include the loaded sparc2-a";
  }
  EXPECT_GE(best.hosts.size(), 2u);  // but parallelism still pays
}

TEST(HostSelection, BestPlanBeatsAllHostsInSimulation) {
  const auto spec = cluster::platform1();
  sor::SorConfig cfg;
  cfg.n = 1000;
  cfg.iterations = 15;
  cfg.real_numerics = false;
  const auto loads = quiet_loads(0.48);
  const auto plans = predict::rank_host_subsets(
      spec, cfg, loads, {0.525, 0.12}, predict::PlanMetric::kExpectedTime);
  const auto& best = plans.front();

  // Run the best plan.
  sor::SorConfig best_cfg = cfg;
  best_cfg.rows_per_rank.assign(best.rows.begin(), best.rows.end());
  sim::Engine e1;
  cluster::Platform p1(e1, best.subset_spec(spec), 7);
  const double t_best =
      sor::run_distributed_sor(e1, p1, best_cfg).total_time;

  // Run the all-hosts plan (uniform strips).
  sim::Engine e2;
  cluster::Platform p2(e2, spec, 7);
  const double t_all = sor::run_distributed_sor(e2, p2, cfg).total_time;

  EXPECT_LT(t_best, t_all);
}

TEST(HostSelection, RiskMetricReordersUncertainPlans) {
  // Host 1 is slightly faster on average but wildly uncertain. Among the
  // single-host plans, expected-time ranks host 1 first while the
  // risk-averse metrics rank the steady host 0 first.
  cluster::PlatformSpec spec = cluster::dedicated_platform(2);
  sor::SorConfig cfg;
  cfg.n = 600;
  cfg.iterations = 10;
  const std::vector<stoch::StochasticValue> loads{
      stoch::StochasticValue(0.60, 0.02), stoch::StochasticValue(0.70, 0.55)};

  auto single_host_order = [&](predict::PlanMetric metric) {
    const auto plans =
        predict::rank_host_subsets(spec, cfg, loads, {1.0}, metric);
    std::vector<std::size_t> singles;
    for (const auto& p : plans) {
      if (p.hosts.size() == 1) singles.push_back(p.hosts[0]);
    }
    return singles;
  };
  EXPECT_EQ(single_host_order(predict::PlanMetric::kExpectedTime),
            (std::vector<std::size_t>{1, 0}));
  EXPECT_EQ(single_host_order(predict::PlanMetric::kP95Time),
            (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(single_host_order(predict::PlanMetric::kUpperBound),
            (std::vector<std::size_t>{0, 1}));
}

TEST(HostSelection, SubsetSpecRestrictsHosts) {
  const auto spec = cluster::platform1();
  predict::CandidatePlan plan;
  plan.hosts = {1, 3};
  const auto sub = plan.subset_spec(spec);
  ASSERT_EQ(sub.hosts.size(), 2u);
  EXPECT_EQ(sub.hosts[0].machine.name, "sparc2-b");
  EXPECT_EQ(sub.hosts[1].machine.name, "sparc10");
}

// --- Adaptive rebalancing -----------------------------------------------

TEST(Rebalance, NumericallyIdenticalToStatic) {
  sor::SorConfig cfg;
  cfg.n = 24;
  cfg.iterations = 12;
  cfg.rebalance_interval = 4;
  cfg.gather_solution = true;
  sim::Engine engine;
  cluster::Platform platform(engine, cluster::platform1(), 9);
  const auto result = sor::run_distributed_sor(engine, platform, cfg);
  sor::SerialSor serial(cfg.n);
  serial.iterate(cfg.iterations);
  for (std::size_t i = 0; i < cfg.n; ++i) {
    for (std::size_t j = 0; j < cfg.n; ++j) {
      ASSERT_DOUBLE_EQ(result.solution[i * cfg.n + j], serial.at(i, j))
          << "(" << i << "," << j << ")";
    }
  }
  EXPECT_FALSE(result.rebalances.empty());
}

TEST(Rebalance, MovesRowsTowardFastHosts) {
  sor::SorConfig cfg;
  cfg.n = 400;
  cfg.iterations = 20;
  cfg.rebalance_interval = 5;
  cfg.real_numerics = false;
  sim::Engine engine;
  cluster::Platform platform(engine, cluster::platform1(), 11);
  const auto result = sor::run_distributed_sor(engine, platform, cfg);
  ASSERT_FALSE(result.rebalances.empty());
  const auto& final_rows = result.rebalances.back().rows;
  ASSERT_EQ(final_rows.size(), 4u);
  EXPECT_EQ(std::accumulate(final_rows.begin(), final_rows.end(),
                            std::size_t{0}),
            cfg.n);
  // The loaded sparc2-a ends up with far fewer rows than the sparc10.
  EXPECT_LT(final_rows[0] * 3, final_rows[3]);
}

TEST(Rebalance, SpeedsUpImbalancedRuns) {
  sor::SorConfig cfg;
  cfg.n = 400;
  cfg.iterations = 40;
  cfg.real_numerics = false;

  sim::Engine e1;
  cluster::Platform p1(e1, cluster::platform1(), 13);
  const double t_static = sor::run_distributed_sor(e1, p1, cfg).total_time;

  cfg.rebalance_interval = 5;
  sim::Engine e2;
  cluster::Platform p2(e2, cluster::platform1(), 13);
  const double t_adaptive = sor::run_distributed_sor(e2, p2, cfg).total_time;

  EXPECT_LT(t_adaptive, 0.75 * t_static);
}

TEST(Rebalance, NoRebalanceOnDedicatedUniformPlatform) {
  // Identical machines, identical loads: the measured layout matches the
  // uniform one, so no migration happens (but events are still recorded).
  sor::SorConfig cfg;
  cfg.n = 64;
  cfg.iterations = 12;
  cfg.rebalance_interval = 4;
  cfg.real_numerics = false;
  sim::Engine engine;
  cluster::Platform platform(engine, cluster::dedicated_platform(4), 15);
  const auto result = sor::run_distributed_sor(engine, platform, cfg);
  for (const auto& ev : result.rebalances) {
    EXPECT_EQ(ev.rows, (std::vector<std::size_t>{16, 16, 16, 16}));
  }
}

}  // namespace
}  // namespace sspred
