// Unit tests for the §1.2 work-allocation strategies.
#include <gtest/gtest.h>

#include <vector>

#include "sched/workshare.hpp"
#include "support/error.hpp"

namespace sspred::sched {
namespace {

using stoch::StochasticValue;

std::vector<MachineProfile> paper_table1_dedicated() {
  // Paper Table 1, dedicated row: A = 10 s/unit, B = 5 s/unit.
  return {{"A", StochasticValue(10.0)}, {"B", StochasticValue(5.0)}};
}

std::vector<MachineProfile> paper_table1_production() {
  // Production row: both 12 s/unit, A ± 5%, B ± 30%.
  return {{"A", StochasticValue::from_percent(12.0, 5.0)},
          {"B", StochasticValue::from_percent(12.0, 30.0)}};
}

TEST(Allocate, DedicatedGivesBTwiceTheWork) {
  const auto machines = paper_table1_dedicated();
  const Allocation a = allocate(300, machines, Strategy::kMeanBalance);
  EXPECT_EQ(a.total(), 300u);
  EXPECT_EQ(a.units[0], 100u);
  EXPECT_EQ(a.units[1], 200u);
}

TEST(Allocate, ProductionMeansSplitEqually) {
  const auto machines = paper_table1_production();
  const Allocation a = allocate(200, machines, Strategy::kMeanBalance);
  EXPECT_EQ(a.units[0], 100u);
  EXPECT_EQ(a.units[1], 100u);
}

TEST(Allocate, ConservativeFavorsLowVarianceMachine) {
  // Paper §1.2: "more work could be assigned to the small variance
  // machine (machine A)".
  const auto machines = paper_table1_production();
  const Allocation a = allocate(200, machines, Strategy::kConservative);
  EXPECT_GT(a.units[0], a.units[1]);
  EXPECT_EQ(a.total(), 200u);
}

TEST(Allocate, OptimisticFavorsHighVarianceMachine) {
  // B's best case (8.4 s/unit) beats A's (11.4 s/unit).
  const auto machines = paper_table1_production();
  const Allocation a = allocate(200, machines, Strategy::kOptimistic);
  EXPECT_GT(a.units[1], a.units[0]);
}

TEST(Allocate, RiskAversionScalesConservatism) {
  const auto machines = paper_table1_production();
  const Allocation mild = allocate(1000, machines, Strategy::kConservative, 0.2);
  const Allocation strong =
      allocate(1000, machines, Strategy::kConservative, 3.0);
  EXPECT_GT(strong.units[0], mild.units[0]);
}

TEST(Allocate, EveryMachineGetsAtLeastOneUnit) {
  const std::vector<MachineProfile> machines{
      {"fast", StochasticValue(1.0)}, {"slow", StochasticValue(1000.0)}};
  const Allocation a = allocate(50, machines, Strategy::kMeanBalance);
  EXPECT_GE(a.units[1], 1u);
  EXPECT_EQ(a.total(), 50u);
}

TEST(Allocate, ValidationErrors) {
  const auto machines = paper_table1_dedicated();
  EXPECT_THROW((void)allocate(1, machines, Strategy::kMeanBalance),
               support::Error);
  const std::vector<MachineProfile> none;
  EXPECT_THROW((void)allocate(10, none, Strategy::kMeanBalance),
               support::Error);
  const std::vector<MachineProfile> bad{{"zero", StochasticValue(0.0)}};
  EXPECT_THROW((void)allocate(10, bad, Strategy::kMeanBalance),
               support::Error);
}

class AllocationTotalSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AllocationTotalSweep, TotalsAlwaysExact) {
  const auto machines = paper_table1_production();
  for (auto strat : {Strategy::kMeanBalance, Strategy::kConservative,
                     Strategy::kOptimistic}) {
    EXPECT_EQ(allocate(GetParam(), machines, strat).total(), GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, AllocationTotalSweep,
                         ::testing::Values(2, 3, 7, 100, 101, 9999));

TEST(PredictedMakespan, ScalesUnitTimes) {
  const auto machines = paper_table1_dedicated();
  Allocation a;
  a.units = {10, 20};
  const StochasticValue span =
      predicted_makespan(a, machines, stoch::ExtremePolicy::kLargestMean);
  EXPECT_DOUBLE_EQ(span.mean(), 100.0);
}

TEST(PredictedMakespan, MismatchThrows) {
  const auto machines = paper_table1_dedicated();
  Allocation a;
  a.units = {10};
  EXPECT_THROW((void)predicted_makespan(a, machines), support::Error);
}

TEST(SimulateMakespan, BalancedBeatsSkewedOnMeans) {
  const auto machines = paper_table1_production();
  support::Rng rng(5);
  const Allocation balanced = allocate(200, machines, Strategy::kMeanBalance);
  Allocation skewed;
  skewed.units = {20, 180};
  const auto b = simulate_makespan(balanced, machines, rng);
  const auto s = simulate_makespan(skewed, machines, rng);
  EXPECT_LT(b.mean, s.mean);
}

TEST(SimulateMakespan, ConservativeCutsTailRisk) {
  // The paper's motivating claim: when mispredictions are penalized, give
  // more work to the predictable machine. The conservative allocation's
  // 95th percentile should beat mean-balancing's.
  const auto machines = paper_table1_production();
  support::Rng rng(7);
  const auto mean_alloc = allocate(400, machines, Strategy::kMeanBalance);
  const auto cons_alloc =
      allocate(400, machines, Strategy::kConservative, 1.0);
  const auto mean_stats = simulate_makespan(mean_alloc, machines, rng, 50'000);
  const auto cons_stats = simulate_makespan(cons_alloc, machines, rng, 50'000);
  EXPECT_LT(cons_stats.p95, mean_stats.p95);
  EXPECT_LT(cons_stats.sd, mean_stats.sd);
}

TEST(SimulateMakespan, PredictedMakespanConsistentWithSimulation) {
  const auto machines = paper_table1_production();
  support::Rng rng(9);
  const auto alloc = allocate(100, machines, Strategy::kMeanBalance);
  const auto pred = predicted_makespan(alloc, machines);
  const auto sim = simulate_makespan(alloc, machines, rng, 50'000);
  EXPECT_NEAR(pred.mean(), sim.mean, 0.05 * sim.mean);
}

TEST(Capacities, RatioOfLoadToBenchmark) {
  const std::vector<double> bm{1e-6, 2e-6};
  const std::vector<double> loads{0.5, 1.0};
  const auto caps = capacities(bm, loads);
  EXPECT_DOUBLE_EQ(caps[0], 0.5e6);
  EXPECT_DOUBLE_EQ(caps[1], 0.5e6);
  const std::vector<double> short_loads{0.5};
  EXPECT_THROW((void)capacities(bm, short_loads), support::Error);
}

}  // namespace
}  // namespace sspred::sched
