// Tests for the graybox learned-predictor bank (src/learn/): RLS
// convergence and drift tracking, streaming residual quantiles, feature
// extraction, the PredictorBank's warm-up/prediction contract, the
// Arbiter's hysteresis flip and blend math, end-to-end learning through
// the PredictionService (flip under unmodeled drift, determinism,
// sharding), and the concurrency suites the TSan CI job targets
// (concurrent ledger record/snapshot with per-candidate children,
// concurrent submit/report against a learning service).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "calib/ledger.hpp"
#include "cluster/platform.hpp"
#include "learn/arbiter.hpp"
#include "learn/bank.hpp"
#include "learn/feature.hpp"
#include "learn/quantile.hpp"
#include "learn/rls.hpp"
#include "serve/service.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace sspred::learn {
namespace {

// --- RlsPredictor ------------------------------------------------------

TEST(LearnRls, RecoversLinearCoefficients) {
  RlsPredictor rls(3);
  support::Rng rng(7);
  const double theta[3] = {2.0, -1.5, 0.75};
  for (int i = 0; i < 200; ++i) {
    const std::vector<double> x = {1.0, rng.uniform(0.5, 3.0),
                                   rng.uniform(-1.0, 1.0)};
    const double y = theta[0] * x[0] + theta[1] * x[1] + theta[2] * x[2];
    rls.update(x, y);
  }
  const auto coef = rls.coefficients();
  ASSERT_EQ(coef.size(), 3u);
  EXPECT_NEAR(coef[0], theta[0], 1e-6);
  EXPECT_NEAR(coef[1], theta[1], 1e-6);
  EXPECT_NEAR(coef[2], theta[2], 1e-6);
  const std::vector<double> probe = {1.0, 2.0, 0.5};
  EXPECT_NEAR(rls.predict(probe), 2.0 - 3.0 + 0.375, 1e-6);
  EXPECT_EQ(rls.count(), 200u);
}

TEST(LearnRls, ForgettingTracksCoefficientDrift) {
  RlsOptions options;
  options.forgetting = 0.9;
  RlsPredictor rls(2, options);
  support::Rng rng(11);
  // Regime 1: y = 1 + 2 x. Regime 2: y = 1 + 5 x.
  for (int i = 0; i < 100; ++i) {
    const double x = rng.uniform(0.5, 2.0);
    rls.update(std::vector<double>{1.0, x}, 1.0 + 2.0 * x);
  }
  EXPECT_NEAR(rls.coefficients()[1], 2.0, 1e-6);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.uniform(0.5, 2.0);
    rls.update(std::vector<double>{1.0, x}, 1.0 + 5.0 * x);
  }
  EXPECT_NEAR(rls.coefficients()[1], 5.0, 1e-4);
}

TEST(LearnRls, InnovationVarianceReflectsResidualNoise) {
  RlsPredictor rls(1);
  support::Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    rls.update(std::vector<double>{1.0}, 10.0 + rng.normal(0.0, 0.5));
  }
  // The one-step-ahead squared error settles near the noise variance.
  EXPECT_GT(rls.innovation_variance(), 0.05);
  EXPECT_LT(rls.innovation_variance(), 1.0);
}

TEST(LearnRls, RejectsDimensionMismatch) {
  RlsPredictor rls(2);
  EXPECT_THROW(rls.update(std::vector<double>{1.0}, 1.0), support::Error);
  EXPECT_THROW((void)rls.predict(std::vector<double>{1.0, 2.0, 3.0}),
               support::Error);
}

// --- StreamingQuantiles ------------------------------------------------

TEST(LearnQuantiles, TracksNormalQuantiles) {
  StreamingQuantiles q;
  support::Rng rng(13);
  for (int i = 0; i < 20000; ++i) q.add(rng.normal(10.0, 2.0));
  const auto v = q.quantiles();
  ASSERT_EQ(v.size(), 3u);
  // N(10, 2): q05 ~ 6.71, q50 ~ 10, q95 ~ 13.29. SGD quantile tracking
  // is noisy, so the tolerances are loose — ordering and rough location
  // are the contract.
  EXPECT_NEAR(v[0], 6.71, 1.5);
  EXPECT_NEAR(v[1], 10.0, 1.0);
  EXPECT_NEAR(v[2], 13.29, 1.5);
  EXPECT_LT(v[0], v[1]);
  EXPECT_LT(v[1], v[2]);
}

TEST(LearnQuantiles, ConstantStreamStaysAtTheConstant) {
  StreamingQuantiles q;
  for (int i = 0; i < 1000; ++i) q.add(42.0);
  // The adaptive step scale collapses on a constant stream, so every
  // marker stays pinned (within the geometrically-shrinking step sum).
  for (const double v : q.quantiles()) EXPECT_NEAR(v, 42.0, 0.5);
  EXPECT_EQ(q.count(), 1000u);
}

TEST(LearnQuantiles, QuantilesReturnedMonotone) {
  StreamingQuantiles q;
  support::Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    q.add(rng.uniform(-1.0, 1.0));
    const auto v = q.quantiles();
    EXPECT_LE(v[0], v[1]);
    EXPECT_LE(v[1], v[2]);
  }
}

TEST(LearnQuantiles, RejectsInvalidTaus) {
  QuantileOptions options;
  options.taus = {0.0, 0.5, 0.95};
  EXPECT_THROW(StreamingQuantiles{options}, support::Error);
  options.taus = {0.05, 0.5, 1.0};
  EXPECT_THROW(StreamingQuantiles{options}, support::Error);
}

// --- Feature extraction ------------------------------------------------

TEST(LearnFeature, ReciprocalAvailabilityLayout) {
  const std::vector<stoch::StochasticValue> loads = {
      stoch::StochasticValue(0.5, 0.1), stoch::StochasticValue(0.25, 0.05)};
  const stoch::StochasticValue bw(0.8, 0.1);
  std::vector<double> x;
  extract_features(loads, bw, /*uses_bandwidth=*/true, x);
  ASSERT_EQ(x.size(), feature_dim(2));
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);   // 1 / 0.5
  EXPECT_DOUBLE_EQ(x[2], 4.0);   // 1 / 0.25
  EXPECT_DOUBLE_EQ(x[3], 1.25);  // 1 / 0.8

  // No bandwidth parameter: the slot is reserved but zeroed, so the
  // dimension depends on structure only.
  extract_features(loads, bw, /*uses_bandwidth=*/false, x);
  ASSERT_EQ(x.size(), feature_dim(2));
  EXPECT_DOUBLE_EQ(x[3], 0.0);
}

TEST(LearnFeature, ZeroAvailabilityIsFloored) {
  const std::vector<stoch::StochasticValue> loads = {
      stoch::StochasticValue(0.0, 0.0)};
  std::vector<double> x;
  extract_features(loads, stoch::StochasticValue(0.0, 0.0), true, x);
  for (const double v : x) EXPECT_TRUE(std::isfinite(v));
  EXPECT_DOUBLE_EQ(x[1], 1.0 / kAvailabilityFloor);
}

// --- PredictorBank -----------------------------------------------------

TEST(LearnBank, WarmsUpBeforePredicting) {
  BankOptions options;
  options.min_observations = 4;
  PredictorBank bank(options);
  const std::vector<double> x = {1.0, 2.0, 0.0};
  EXPECT_FALSE(bank.predict("k", x).has_value());
  for (int i = 0; i < 3; ++i) bank.observe("k", x, 10.0);
  EXPECT_FALSE(bank.predict("k", x).has_value());
  bank.observe("k", x, 10.0);
  const auto p = bank.predict("k", x);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->observations, 4u);
  EXPECT_FALSE(bank.predict("other", x).has_value());
}

TEST(LearnBank, LearnsLinearRuntimeWithHonestWidth) {
  BankOptions options;
  options.min_observations = 8;
  PredictorBank bank(options);
  support::Rng rng(5);
  // ExTime = 2 + 3 / load — the graybox form the features encode.
  for (int i = 0; i < 300; ++i) {
    const double load = rng.uniform(0.3, 1.0);
    const std::vector<double> x = {1.0, 1.0 / load, 0.0};
    bank.observe("k", x, 2.0 + 3.0 / load + rng.normal(0.0, 0.05));
  }
  const std::vector<double> probe = {1.0, 2.0, 0.0};  // load 0.5
  const auto p = bank.predict("k", probe);
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(p->value.mean(), 8.0, 0.3);
  EXPECT_GT(p->value.halfwidth(), 0.0);
  EXPECT_LE(p->q05, p->q50);
  EXPECT_LE(p->q50, p->q95);
}

TEST(LearnBank, PredictionsNeverDegenerateToPoints) {
  BankOptions options;
  options.min_observations = 2;
  PredictorBank bank(options);
  const std::vector<double> x = {1.0, 1.0};
  // Perfectly noiseless stream: residual quantiles collapse, but the
  // half-width floor keeps the prediction a genuine interval (the
  // recalibrator and the ledger's residual machinery need sd > 0).
  for (int i = 0; i < 50; ++i) bank.observe("k", x, 5.0);
  const auto p = bank.predict("k", x);
  ASSERT_TRUE(p.has_value());
  EXPECT_FALSE(p->value.is_point());
  EXPECT_GE(p->value.halfwidth(), 1e-9);
}

TEST(LearnBank, SnapshotSummarizesEveryKey) {
  PredictorBank bank;
  const std::vector<double> x = {1.0, 2.0};
  bank.observe("a", x, 1.0);
  bank.observe("a", x, 1.1);
  bank.observe("b", x, 2.0);
  const auto rows = bank.snapshot();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].structure_key, "a");
  EXPECT_EQ(rows[0].observations, 2u);
  EXPECT_EQ(rows[0].coefficients.size(), 2u);
  EXPECT_EQ(rows[1].structure_key, "b");
  EXPECT_EQ(bank.observations("a"), 2u);
  EXPECT_EQ(bank.observations("nope"), 0u);
}

// --- Arbiter -----------------------------------------------------------

TEST(LearnArbiter, BlendIsMomentMatchedMixture) {
  const stoch::StochasticValue s(10.0, 2.0);  // sd 1
  const stoch::StochasticValue l(14.0, 4.0);  // sd 2
  const auto b = blend(s, l, 0.25);
  EXPECT_NEAR(b.mean(), 0.25 * 14.0 + 0.75 * 10.0, 1e-12);
  // Mixture variance: sum w_i (var_i + mean_i^2) - mean^2 — wider than
  // either component when the means disagree.
  const double var = 0.25 * (4.0 + 196.0) + 0.75 * (1.0 + 100.0) - 11.0 * 11.0;
  EXPECT_NEAR(b.sd(), std::sqrt(var), 1e-12);
  // Degenerate weights recover the endpoints.
  EXPECT_NEAR(blend(s, l, 0.0).mean(), s.mean(), 1e-12);
  EXPECT_NEAR(blend(s, l, 1.0).mean(), l.mean(), 1e-12);
}

ArbiterOptions fast_arbiter() {
  ArbiterOptions options;
  options.min_observations = 8;
  options.hysteresis = 4;
  return options;
}

TEST(LearnArbiter, FlipsToLearnedWithHysteresis) {
  Arbiter arbiter(fast_arbiter());
  // Structural is badly off (stale regime); learned nails it.
  const stoch::StochasticValue structural(10.0, 1.0);
  const stoch::StochasticValue learned(15.0, 1.0);
  std::size_t flip_at = 0;
  for (std::size_t i = 0; i < 40; ++i) {
    if (arbiter.record("m", structural, &learned, 15.0)) {
      flip_at = i + 1;
      break;
    }
  }
  // Eligibility needs min_observations in the learned window, then the
  // challenger must win `hysteresis` consecutive observations.
  ASSERT_GT(flip_at, 0u) << "arbiter never flipped";
  EXPECT_GE(flip_at, fast_arbiter().hysteresis);
  EXPECT_LE(flip_at,
            fast_arbiter().min_observations + fast_arbiter().hysteresis);
  EXPECT_EQ(arbiter.source("m"), Source::kLearned);
  EXPECT_EQ(arbiter.flips_total(), 1u);

  const auto table = arbiter.table();
  ASSERT_EQ(table.size(), 1u);
  EXPECT_EQ(table[0].model_id, "m");
  EXPECT_EQ(table[0].serving, Source::kLearned);
  EXPECT_EQ(table[0].flips, 1u);
  EXPECT_LT(table[0].learned.rolling_crps, table[0].structural.rolling_crps);
}

TEST(LearnArbiter, HysteresisBlocksLuckyStreaks) {
  Arbiter arbiter(fast_arbiter());
  const stoch::StochasticValue structural(10.0, 1.0);
  const stoch::StochasticValue learned(15.0, 1.0);
  // Learned wins for fewer observations than the hysteresis run, then
  // the regimes swap back: no flip may have happened.
  for (int i = 0; i < 3; ++i) {
    (void)arbiter.record("m", structural, &learned, 15.0);
  }
  for (int i = 0; i < 30; ++i) {
    (void)arbiter.record("m", structural, &learned, 10.0);
  }
  EXPECT_EQ(arbiter.source("m"), Source::kStructural);
  EXPECT_EQ(arbiter.flips_total(), 0u);
}

TEST(LearnArbiter, NullLearnedPinsServingToStructural) {
  Arbiter arbiter(fast_arbiter());
  const stoch::StochasticValue structural(10.0, 1.0);
  const stoch::StochasticValue learned(15.0, 1.0);
  for (int i = 0; i < 40; ++i) {
    (void)arbiter.record("m", structural, &learned, 15.0);
  }
  ASSERT_EQ(arbiter.source("m"), Source::kLearned);
  // Bank went blank (node restart): serving must pin back to structural
  // immediately — a flip decided on stale evidence cannot outlive the
  // learned side's state.
  (void)arbiter.record("m", structural, nullptr, 15.0);
  EXPECT_EQ(arbiter.source("m"), Source::kStructural);
}

TEST(LearnArbiter, BlendWeightFollowsRollingSkill) {
  Arbiter arbiter(fast_arbiter());
  const stoch::StochasticValue structural(10.0, 1.0);
  const stoch::StochasticValue learned(15.0, 1.0);
  EXPECT_DOUBLE_EQ(arbiter.blend_weight("m"), 0.5);
  for (int i = 0; i < 40; ++i) {
    (void)arbiter.record("m", structural, &learned, 15.0);
  }
  // Learned is far more skilled, so its share grows past the prior and
  // stays inside the configured clamp.
  EXPECT_GT(arbiter.blend_weight("m"), 0.5);
  EXPECT_LE(arbiter.blend_weight("m"),
            fast_arbiter().max_blend_weight);
}

TEST(LearnArbiter, DeterministicForFixedObservationTrace) {
  const auto run = [] {
    Arbiter arbiter(fast_arbiter());
    support::Rng rng(23);
    for (int i = 0; i < 200; ++i) {
      const stoch::StochasticValue structural(10.0, 1.0);
      const stoch::StochasticValue learned(12.0 + rng.uniform(-0.1, 0.1),
                                           1.0);
      (void)arbiter.record("m", structural, &learned,
                           12.0 + rng.uniform(-0.5, 0.5));
    }
    return arbiter.table();
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a[0].serving, b[0].serving);
  EXPECT_EQ(a[0].flips, b[0].flips);
  EXPECT_EQ(a[0].observations, b[0].observations);
  EXPECT_DOUBLE_EQ(a[0].blend_weight, b[0].blend_weight);
  EXPECT_DOUBLE_EQ(a[0].learned.rolling_crps, b[0].learned.rolling_crps);
}

// --- End-to-end through the PredictionService --------------------------

serve::ModelSpec sor_spec(std::size_t n = 125, std::size_t hosts = 2) {
  serve::ModelSpec spec;
  spec.app = serve::ModelSpec::App::kSor;
  spec.platform = cluster::dedicated_platform(hosts);
  spec.config.n = n;
  spec.config.iterations = 5;
  return spec;
}

serve::PredictRequest sor_request(const std::string& id) {
  serve::PredictRequest request;
  request.model_id = id;
  request.loads = {stoch::StochasticValue(0.6, 0.1),
                   stoch::StochasticValue(0.65, 0.1)};
  return request;
}

struct DriftRun {
  std::size_t flip_trial = 0;  ///< 0: never flipped
  std::vector<double> means;
  std::vector<std::uint8_t> sources;
};

// Sequential closed loop against a learning service. The observed
// runtime is a fixed multiple of the STRUCTURAL prediction (captured on
// the first trial), i.e. an unmodeled slowdown the structural model
// never sees — exactly the drift the learned candidate exists to absorb.
DriftRun run_drift_loop(serve::PredictionService& service,
                        const std::string& id, std::size_t trials,
                        double drift = 1.5) {
  DriftRun out;
  double base = 0.0;
  for (std::size_t i = 0; i < trials; ++i) {
    auto result = service.submit(sor_request(id)).get();
    EXPECT_TRUE(result.ok()) << result.error;
    if (i == 0) base = result.point;
    out.means.push_back(result.value.mean());
    out.sources.push_back(result.source);
    service.report_observation(result.request_id, base * drift);
    if (out.flip_trial == 0 &&
        service.arbiter()->source(id) != Source::kStructural) {
      out.flip_trial = i + 1;
    }
  }
  return out;
}

TEST(LearnServe, FlipsToLearnedUnderUnmodeledDrift) {
  serve::ServiceOptions options;
  options.workers = 1;
  options.enable_learning = true;
  serve::PredictionService service(options);
  service.register_model("sor", sor_spec());

  const auto& bank_options = service.bank()->options();
  const auto& arb_options = service.arbiter()->options();
  const std::size_t bound = bank_options.min_observations +
                            arb_options.min_observations +
                            arb_options.hysteresis + 8;
  const DriftRun run = run_drift_loop(service, "sor", bound + 40);

  // The flip happens, and within the analytic bound: bank warm-up +
  // challenger eligibility + hysteresis (+ slack for the streak start).
  ASSERT_GT(run.flip_trial, 0u) << "serving source never left structural";
  EXPECT_LE(run.flip_trial, bound);

  // Post-flip requests are actually served from the learned side.
  EXPECT_NE(run.sources.back(), 0);
  auto& metrics = service.learn_metrics();
  EXPECT_GT(metrics.counter("predictions_served_learned").value() +
                metrics.counter("predictions_served_blended").value(),
            0u);
  EXPECT_GE(metrics.counter("arbiter_flips").value(), 1u);
  EXPECT_EQ(metrics.counter("observations_trained").value(),
            run.means.size());

  // And the served mean converged toward the drifted truth.
  const auto table = service.arbiter()->table();
  ASSERT_EQ(table.size(), 1u);
  EXPECT_LT(table[0].learned.rolling_crps, table[0].structural.rolling_crps);
}

TEST(LearnServe, DeterministicForFixedObservationTrace) {
  const auto run = [] {
    serve::ServiceOptions options;
    options.workers = 1;
    options.enable_learning = true;
    serve::PredictionService service(options);
    service.register_model("sor", sor_spec());
    return run_drift_loop(service, "sor", 96);
  };
  const DriftRun a = run();
  const DriftRun b = run();
  EXPECT_EQ(a.flip_trial, b.flip_trial);
  ASSERT_EQ(a.means.size(), b.means.size());
  for (std::size_t i = 0; i < a.means.size(); ++i) {
    EXPECT_EQ(a.means[i], b.means[i]) << "trial " << i;
    EXPECT_EQ(a.sources[i], b.sources[i]) << "trial " << i;
  }
}

TEST(LearnServe, ShardedServiceArbitratesPerModelServiceWide) {
  serve::ServiceOptions options;
  options.workers = 1;
  options.shards = 4;
  options.enable_learning = true;
  serve::PredictionService service(options);
  // Two structures: their streams land on (potentially) different
  // shards, but bank and arbiter are shared service-wide.
  service.register_model("sorA", sor_spec(125));
  service.register_model("sorB", sor_spec(250));

  const DriftRun a = run_drift_loop(service, "sorA", 96);
  const DriftRun b = run_drift_loop(service, "sorB", 96);
  EXPECT_GT(a.flip_trial, 0u);
  EXPECT_GT(b.flip_trial, 0u);
  EXPECT_EQ(service.arbiter()->table().size(), 2u);
  EXPECT_EQ(service.bank()->snapshot().size(), 2u);
}

TEST(LearnServe, DisabledLearningLeavesServiceUntouched) {
  serve::ServiceOptions options;
  options.workers = 1;
  serve::PredictionService service(options);
  service.register_model("sor", sor_spec());
  EXPECT_EQ(service.bank(), nullptr);
  EXPECT_EQ(service.arbiter(), nullptr);
  auto result = service.submit(sor_request("sor")).get();
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.source, 0);
}

// --- Concurrency (TSan targets) ----------------------------------------

TEST(LearnLedgerConcurrency, ConcurrentRecordAndSnapshotOfCandidates) {
  calib::AccuracyLedger ledger;
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 500;
  const std::vector<std::string> candidates = {"m#structural", "m#learned",
                                               "m#blended"};
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      for (const auto& id : candidates) {
        if (ledger.has(id)) {
          const auto s = ledger.snapshot(id);
          // Windowed stats stay internally consistent mid-stream.
          EXPECT_LE(s.rolling_count, ledger.options().coverage_window);
          EXPECT_LE(s.inside, s.count);
          EXPECT_GE(s.rolling_crps, 0.0);
        }
      }
      (void)ledger.snapshot();
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      support::Rng rng(100 + static_cast<std::uint64_t>(w));
      for (int i = 0; i < kPerWriter; ++i) {
        const auto& id = candidates[static_cast<std::size_t>(i) %
                                    candidates.size()];
        ledger.record(id, stoch::StochasticValue(10.0, 2.0),
                      rng.normal(10.0, 1.0));
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  reader.join();

  std::uint64_t total = 0;
  for (const auto& id : candidates) total += ledger.snapshot(id).count;
  EXPECT_EQ(total, static_cast<std::uint64_t>(kWriters) * kPerWriter);
  EXPECT_EQ(ledger.snapshot().count,
            static_cast<std::uint64_t>(kWriters) * kPerWriter);
}

TEST(LearnServeConcurrency, ConcurrentClientsTrainOneBank) {
  constexpr int kClients = 4;
  constexpr int kPerClient = 120;

  serve::ServiceOptions options;
  options.workers = 2;
  options.shards = 2;
  options.enable_learning = true;
  serve::PredictionService service(options);
  service.register_model("sor", sor_spec());

  std::atomic<bool> stop{false};
  std::thread inspector([&] {
    while (!stop.load()) {
      (void)service.arbiter()->table();
      (void)service.bank()->snapshot();
      (void)service.metrics().render();
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < kPerClient; ++i) {
        auto result = service.submit(sor_request("sor")).get();
        ASSERT_TRUE(result.ok()) << result.error;
        service.report_observation(result.request_id, result.point * 1.4);
      }
    });
  }
  for (auto& t : clients) t.join();
  stop.store(true);
  inspector.join();
  service.drain();

  EXPECT_EQ(service.learn_metrics().counter("observations_trained").value(),
            static_cast<std::uint64_t>(kClients) * kPerClient);
  EXPECT_EQ(service.bank()->observations(sor_spec().structure_key()),
            static_cast<std::uint64_t>(kClients) * kPerClient);
}

}  // namespace
}  // namespace sspred::learn
