// Tests for the 2-D block-decomposed SOR and its structural model.
#include <gtest/gtest.h>

#include "predict/sor_model.hpp"
#include "sor/block.hpp"
#include "sor/serial.hpp"
#include "support/error.hpp"

namespace sspred::sor {
namespace {

TEST(BlockExtent, SplitsCoverExactly) {
  for (const std::size_t n : {10, 13, 100}) {
    for (const std::size_t parts : {1, 2, 3, 4, 7}) {
      if (parts > n) continue;
      std::size_t total = 0;
      for (std::size_t i = 0; i < parts; ++i) {
        EXPECT_EQ(block_offset(n, parts, i), total);
        total += block_extent(n, parts, i);
      }
      EXPECT_EQ(total, n);
    }
  }
}

struct GridCase {
  std::size_t pr;
  std::size_t pc;
};

class BlockEquivalence : public ::testing::TestWithParam<GridCase> {};

TEST_P(BlockEquivalence, MatchesSerialBitwise) {
  const auto [pr, pc] = GetParam();
  BlockConfig cfg;
  cfg.n = 22;
  cfg.iterations = 9;
  cfg.pr = pr;
  cfg.pc = pc;
  cfg.gather_solution = true;
  sim::Engine engine;
  cluster::Platform platform(engine, cluster::dedicated_platform(pr * pc), 3);
  const SorResult result = run_distributed_block_sor(engine, platform, cfg);
  ASSERT_EQ(result.solution.size(), cfg.n * cfg.n);

  SerialSor serial(cfg.n);
  serial.iterate(cfg.iterations);
  for (std::size_t i = 0; i < cfg.n; ++i) {
    for (std::size_t j = 0; j < cfg.n; ++j) {
      ASSERT_DOUBLE_EQ(result.solution[i * cfg.n + j], serial.at(i, j))
          << pr << "x" << pc << " at (" << i << "," << j << ")";
    }
  }
  EXPECT_NEAR(result.residual, serial.residual_norm(), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Grids, BlockEquivalence,
                         ::testing::Values(GridCase{1, 1}, GridCase{2, 2},
                                           GridCase{1, 4}, GridCase{4, 1},
                                           GridCase{2, 3}, GridCase{3, 2}));

TEST(Block, ValidationErrors) {
  BlockConfig cfg;
  cfg.pr = 2;
  cfg.pc = 3;
  sim::Engine engine;
  cluster::Platform platform(engine, cluster::dedicated_platform(4), 1);
  EXPECT_THROW((void)run_distributed_block_sor(engine, platform, cfg),
               support::Error);
}

TEST(Block, LessCommThanStripsOnManyHosts) {
  // 8 hosts: strips cut the grid 7 times; a 2x4 block grid cuts it 4 times
  // (1 horizontal + 3 vertical) — less boundary volume, faster exchanges.
  const std::size_t n = 256;
  const std::size_t iters = 8;

  sim::Engine e1;
  cluster::Platform p1(e1, cluster::dedicated_platform(8), 5);
  SorConfig strips;
  strips.n = n;
  strips.iterations = iters;
  strips.real_numerics = false;
  const auto rs = run_distributed_sor(e1, p1, strips);

  sim::Engine e2;
  cluster::Platform p2(e2, cluster::dedicated_platform(8), 5);
  BlockConfig blocks;
  blocks.n = n;
  blocks.iterations = iters;
  blocks.pr = 2;
  blocks.pc = 4;
  blocks.real_numerics = false;
  const auto rb = run_distributed_block_sor(e2, p2, blocks);

  auto total_comm = [](const SorResult& r) {
    double acc = 0.0;
    for (const auto& rank : r.ranks) {
      for (const auto& t : rank.iterations) acc += t.red_comm + t.black_comm;
    }
    return acc;
  };
  EXPECT_LT(total_comm(rb), 0.8 * total_comm(rs));
  EXPECT_LT(rb.total_time, rs.total_time);
}

TEST(BlockModel, DedicatedPredictionTracksRun) {
  const auto spec = cluster::dedicated_platform(4);
  BlockConfig cfg;
  cfg.n = 600;
  cfg.iterations = 15;
  cfg.pr = 2;
  cfg.pc = 2;
  cfg.real_numerics = false;

  const predict::BlockStructuralModel model(spec, cfg.n, cfg.iterations,
                                            cfg.pr, cfg.pc);
  const std::vector<stoch::StochasticValue> loads(
      4, stoch::StochasticValue(1.0));
  const double predicted = model.predict_point(model.make_env(loads, {1.0}));

  sim::Engine engine;
  cluster::Platform platform(engine, spec, 7);
  const double actual =
      run_distributed_block_sor(engine, platform, cfg).total_time;
  EXPECT_NEAR(predicted, actual, 0.05 * actual);
}

TEST(BlockModel, StochasticPredictionCapturesLoadedRun) {
  cluster::PlatformSpec spec = cluster::dedicated_platform(4);
  for (auto& h : spec.hosts) {
    h.load = cluster::platform1_load(/*center_only=*/true);
  }
  BlockConfig cfg;
  cfg.n = 400;
  cfg.iterations = 12;
  cfg.pr = 2;
  cfg.pc = 2;
  cfg.real_numerics = false;

  const predict::BlockStructuralModel model(spec, cfg.n, cfg.iterations,
                                            cfg.pr, cfg.pc);
  const std::vector<stoch::StochasticValue> loads(
      4, stoch::StochasticValue(0.48, 0.06));
  const auto predicted = model.predict(model.make_env(loads, {1.0}));

  sim::Engine engine;
  cluster::Platform platform(engine, spec, 9);
  const double actual =
      run_distributed_block_sor(engine, platform, cfg).total_time;
  EXPECT_TRUE(predicted.contains(actual))
      << predicted.to_string() << " vs " << actual;
}

}  // namespace
}  // namespace sspred::sor
