// Unit tests for group operations (Max/Min policies, Clark's
// approximation) and modal mixing (§2.1.2, §2.3.3).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/gmm.hpp"
#include "stoch/group_ops.hpp"
#include "stoch/modes.hpp"
#include "stoch/montecarlo.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace sspred::stoch {
namespace {

TEST(Smax, LargestMeanPicksPaperExampleA) {
  // Paper §2.3.3: A = 4 ± 0.5, B = 3 ± 2, C = 3 ± 1. A has the largest
  // mean; B has the largest value in its range.
  const std::vector<StochasticValue> xs{{4.0, 0.5}, {3.0, 2.0}, {3.0, 1.0}};
  const StochasticValue by_mean = smax(xs, ExtremePolicy::kLargestMean);
  EXPECT_DOUBLE_EQ(by_mean.mean(), 4.0);
  EXPECT_DOUBLE_EQ(by_mean.halfwidth(), 0.5);
  const StochasticValue by_upper = smax(xs, ExtremePolicy::kLargestUpper);
  EXPECT_DOUBLE_EQ(by_upper.mean(), 3.0);
  EXPECT_DOUBLE_EQ(by_upper.halfwidth(), 2.0);
}

TEST(Smax, SingleOperandIsIdentity) {
  const std::vector<StochasticValue> xs{{7.0, 1.0}};
  for (auto p : {ExtremePolicy::kLargestMean, ExtremePolicy::kLargestUpper,
                 ExtremePolicy::kClark}) {
    const StochasticValue r = smax(xs, p);
    EXPECT_NEAR(r.mean(), 7.0, 1e-9);
  }
}

TEST(Smax, EmptyThrows) {
  const std::vector<StochasticValue> xs;
  EXPECT_THROW((void)smax(xs, ExtremePolicy::kLargestMean), support::Error);
}

TEST(ClarkMax, DominantOperandWins) {
  // When one operand is far above the other, max ≈ the dominant one.
  const StochasticValue big(100.0, 2.0);
  const StochasticValue small(1.0, 2.0);
  const StochasticValue r = clark_max(big, small);
  EXPECT_NEAR(r.mean(), 100.0, 0.01);
  EXPECT_NEAR(r.sd(), 1.0, 0.01);
}

TEST(ClarkMax, SymmetricOperandsShiftUp) {
  // max of two iid N(0,1) has mean 1/sqrt(pi).
  const StochasticValue x = StochasticValue::from_mean_sd(0.0, 1.0);
  const StochasticValue r = clark_max(x, x);
  EXPECT_NEAR(r.mean(), 1.0 / std::sqrt(M_PI), 1e-9);
}

TEST(ClarkMax, MatchesMonteCarlo) {
  const StochasticValue x = StochasticValue::from_mean_sd(10.0, 2.0);
  const StochasticValue y = StochasticValue::from_mean_sd(11.0, 1.0);
  support::Rng rng(7);
  const StochasticValue closed = clark_max(x, y);
  const StochasticValue empirical = empirical_combine(
      x, y, [](double a, double b) { return std::max(a, b); }, rng, 300'000);
  EXPECT_NEAR(closed.mean(), empirical.mean(), 0.02);
  EXPECT_NEAR(closed.sd(), empirical.sd(), 0.03);
}

TEST(ClarkMax, PerfectlyCoupledFallsBackToLargerMean) {
  const StochasticValue x = StochasticValue::from_mean_sd(5.0, 1.0);
  const StochasticValue r = clark_max(x, x, /*rho=*/1.0);
  EXPECT_DOUBLE_EQ(r.mean(), 5.0);
}

TEST(ClarkMax, InvalidCorrelationThrows) {
  const StochasticValue x(1.0, 1.0);
  EXPECT_THROW((void)clark_max(x, x, 1.5), support::Error);
}

TEST(Smin, MirrorsSmax) {
  const std::vector<StochasticValue> xs{{4.0, 0.5}, {3.0, 2.0}};
  const StochasticValue r = smin(xs, ExtremePolicy::kLargestMean);
  EXPECT_DOUBLE_EQ(r.mean(), 3.0);
  EXPECT_DOUBLE_EQ(r.halfwidth(), 2.0);
}

TEST(Smin, ClarkMinMatchesMonteCarlo) {
  const StochasticValue x = StochasticValue::from_mean_sd(10.0, 2.0);
  const StochasticValue y = StochasticValue::from_mean_sd(11.0, 1.0);
  support::Rng rng(11);
  const std::vector<StochasticValue> xs{x, y};
  const StochasticValue closed = smin(xs, ExtremePolicy::kClark);
  const StochasticValue empirical = empirical_combine(
      x, y, [](double a, double b) { return std::min(a, b); }, rng, 300'000);
  EXPECT_NEAR(closed.mean(), empirical.mean(), 0.02);
  EXPECT_NEAR(closed.sd(), empirical.sd(), 0.03);
}

TEST(MixModes, PaperFormula) {
  // P1(M1 ± SD1) + P2(M2 ± SD2) with conservative (related) accumulation.
  const std::vector<Mode> modes{
      {0.25, StochasticValue(0.33, 0.04)},
      {0.35, StochasticValue(0.49, 0.10)},
      {0.40, StochasticValue(0.94, 0.03)},
  };
  const StochasticValue mixed = mix_modes(modes);
  EXPECT_NEAR(mixed.mean(), 0.25 * 0.33 + 0.35 * 0.49 + 0.40 * 0.94, 1e-12);
  EXPECT_NEAR(mixed.halfwidth(),
              0.25 * 0.04 + 0.35 * 0.10 + 0.40 * 0.03, 1e-12);
}

TEST(MixModes, SingleModeIsIdentity) {
  const std::vector<Mode> modes{{1.0, StochasticValue(0.48, 0.05)}};
  const StochasticValue mixed = mix_modes(modes);
  EXPECT_DOUBLE_EQ(mixed.mean(), 0.48);
  EXPECT_DOUBLE_EQ(mixed.halfwidth(), 0.05);
}

TEST(MixModes, OccupanciesMustSumToOne) {
  const std::vector<Mode> bad{{0.5, StochasticValue(1.0, 0.1)}};
  EXPECT_THROW((void)mix_modes(bad), support::Error);
}

TEST(MixtureMoments, LawOfTotalVariance) {
  const std::vector<Mode> modes{
      {0.5, StochasticValue::from_mean_sd(0.0, 1.0)},
      {0.5, StochasticValue::from_mean_sd(10.0, 1.0)},
  };
  const StochasticValue mm = mixture_moments(modes);
  EXPECT_DOUBLE_EQ(mm.mean(), 5.0);
  // var = E[var] + var[means] = 1 + 25 = 26.
  EXPECT_NEAR(mm.sd(), std::sqrt(26.0), 1e-12);
}

TEST(MixtureMoments, MatchesEmpiricalMixture) {
  support::Rng rng(13);
  const std::vector<Mode> modes{
      {0.3, StochasticValue::from_mean_sd(0.33, 0.02)},
      {0.7, StochasticValue::from_mean_sd(0.94, 0.015)},
  };
  std::vector<double> xs;
  for (int i = 0; i < 200'000; ++i) {
    const auto& m = rng.uniform() < 0.3 ? modes[0] : modes[1];
    xs.push_back(sample(m.value, rng));
  }
  const StochasticValue mm = mixture_moments(modes);
  const StochasticValue emp = StochasticValue::from_sample(xs);
  EXPECT_NEAR(mm.mean(), emp.mean(), 0.01);
  EXPECT_NEAR(mm.sd(), emp.sd(), 0.01);
}

TEST(ModesFromGmm, ConvertsComponents) {
  stats::GmmFit fit;
  fit.components = {{0.4, 1.0, 0.1}, {0.6, 2.0, 0.2}};
  const auto modes = modes_from_gmm(fit);
  ASSERT_EQ(modes.size(), 2u);
  EXPECT_DOUBLE_EQ(modes[0].occupancy, 0.4);
  EXPECT_DOUBLE_EQ(modes[0].value.mean(), 1.0);
  EXPECT_DOUBLE_EQ(modes[0].value.sd(), 0.1);
}

TEST(NearestMode, PicksClosestByMean) {
  const std::vector<Mode> modes{
      {0.3, StochasticValue(0.33, 0.02)},
      {0.3, StochasticValue(0.49, 0.05)},
      {0.4, StochasticValue(0.94, 0.02)},
  };
  EXPECT_DOUBLE_EQ(nearest_mode(modes, 0.50).value.mean(), 0.49);
  EXPECT_DOUBLE_EQ(nearest_mode(modes, 0.90).value.mean(), 0.94);
  EXPECT_DOUBLE_EQ(nearest_mode(modes, 0.10).value.mean(), 0.33);
}

}  // namespace
}  // namespace sspred::stoch
