// Cross-module property tests: algebraic laws of the stochastic calculus,
// ordering/conservation invariants of the DES and fabrics, randomized
// stress sweeps, plus the new breakdown/Wilson utilities.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "net/ethernet.hpp"
#include "net/switched.hpp"
#include "predict/sor_model.hpp"
#include "sim/engine.hpp"
#include "stoch/arithmetic.hpp"
#include "stoch/group_ops.hpp"
#include "stoch/metrics.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace sspred {
namespace {

using stoch::Dependence;
using stoch::StochasticValue;

// --- Algebraic laws of the calculus --------------------------------------

StochasticValue random_sv(support::Rng& rng) {
  const double mean = rng.uniform(-50.0, 50.0);
  const double half = rng.uniform(0.0, 10.0);
  return {mean, half};
}

class CalculusLaws : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CalculusLaws, AdditionIsCommutativeAndAssociativeOnMeans) {
  support::Rng rng(GetParam());
  for (int k = 0; k < 50; ++k) {
    const auto a = random_sv(rng);
    const auto b = random_sv(rng);
    const auto c = random_sv(rng);
    for (auto dep : {Dependence::kRelated, Dependence::kUnrelated}) {
      const auto ab = stoch::add(a, b, dep);
      const auto ba = stoch::add(b, a, dep);
      EXPECT_DOUBLE_EQ(ab.mean(), ba.mean());
      EXPECT_DOUBLE_EQ(ab.halfwidth(), ba.halfwidth());
      const auto left = stoch::add(stoch::add(a, b, dep), c, dep);
      const auto right = stoch::add(a, stoch::add(b, c, dep), dep);
      EXPECT_NEAR(left.mean(), right.mean(), 1e-9);
      EXPECT_NEAR(left.halfwidth(), right.halfwidth(), 1e-9);
    }
  }
}

TEST_P(CalculusLaws, ZeroIsAdditiveIdentityAndOneMultiplicative) {
  support::Rng rng(GetParam() + 1);
  for (int k = 0; k < 50; ++k) {
    const auto a = random_sv(rng);
    for (auto dep : {Dependence::kRelated, Dependence::kUnrelated}) {
      EXPECT_EQ(stoch::add(a, StochasticValue(), dep), a);
      if (a.mean() != 0.0) {
        const auto one = stoch::mul(a, StochasticValue(1.0), dep);
        EXPECT_DOUBLE_EQ(one.mean(), a.mean());
        EXPECT_NEAR(one.halfwidth(), a.halfwidth(), 1e-12);
      }
    }
  }
}

TEST_P(CalculusLaws, SumEqualsFoldOfAdds) {
  support::Rng rng(GetParam() + 2);
  std::vector<StochasticValue> xs;
  for (int k = 0; k < 12; ++k) xs.push_back(random_sv(rng));
  for (auto dep : {Dependence::kRelated, Dependence::kUnrelated}) {
    StochasticValue folded;
    for (const auto& x : xs) folded = stoch::add(folded, x, dep);
    const auto summed = stoch::sum(xs, dep);
    EXPECT_NEAR(summed.mean(), folded.mean(), 1e-9);
    EXPECT_NEAR(summed.halfwidth(), folded.halfwidth(), 1e-9);
  }
}

TEST_P(CalculusLaws, ScaleDistributesOverRelatedAddition) {
  support::Rng rng(GetParam() + 3);
  for (int k = 0; k < 50; ++k) {
    const auto a = random_sv(rng);
    const auto b = random_sv(rng);
    const double s = rng.uniform(-4.0, 4.0);
    const auto lhs = stoch::scale(stoch::add(a, b, Dependence::kRelated), s);
    const auto rhs = stoch::add(stoch::scale(a, s), stoch::scale(b, s),
                                Dependence::kRelated);
    EXPECT_NEAR(lhs.mean(), rhs.mean(), 1e-9);
    EXPECT_NEAR(lhs.halfwidth(), rhs.halfwidth(), 1e-9);
  }
}

TEST_P(CalculusLaws, RelatedIntervalAlwaysContainsUnrelated) {
  support::Rng rng(GetParam() + 4);
  for (int k = 0; k < 100; ++k) {
    const auto a = random_sv(rng);
    const auto b = random_sv(rng);
    EXPECT_GE(stoch::add(a, b, Dependence::kRelated).halfwidth(),
              stoch::add(a, b, Dependence::kUnrelated).halfwidth() - 1e-12);
    if (a.mean() != 0.0 && b.mean() != 0.0) {
      EXPECT_GE(stoch::mul(a, b, Dependence::kRelated).halfwidth(),
                stoch::mul(a, b, Dependence::kUnrelated).halfwidth() - 1e-12);
    }
  }
}

TEST_P(CalculusLaws, SmaxUpperBoundsEveryOperandMean) {
  support::Rng rng(GetParam() + 5);
  for (int k = 0; k < 50; ++k) {
    std::vector<StochasticValue> xs;
    for (int i = 0; i < 5; ++i) xs.push_back(random_sv(rng));
    const auto clark = stoch::smax(xs, stoch::ExtremePolicy::kClark);
    for (const auto& x : xs) {
      EXPECT_GE(clark.mean(), x.mean() - 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CalculusLaws,
                         ::testing::Values(101, 202, 303, 404));

// --- Engine invariants -----------------------------------------------------

class EngineStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineStress, EventsAlwaysObserveMonotoneTime) {
  support::Rng rng(GetParam());
  sim::Engine eng;
  double last_seen = -1.0;
  bool violated = false;
  std::size_t fired = 0;
  // Random schedule, including events scheduled from within events.
  for (int i = 0; i < 200; ++i) {
    const double t = rng.uniform(0.0, 100.0);
    eng.schedule_at(t, [&, t] {
      if (eng.now() < last_seen) violated = true;
      last_seen = eng.now();
      ++fired;
      if (fired < 500) {
        eng.schedule_in(rng.uniform(0.0, 10.0), [&] {
          if (eng.now() < last_seen) violated = true;
          last_seen = eng.now();
          ++fired;
        });
      }
    });
  }
  eng.run();
  EXPECT_FALSE(violated);
  EXPECT_GE(fired, 200u);
  EXPECT_EQ(eng.events_processed(), fired);
}

TEST_P(EngineStress, CancelledEventsNeverFire) {
  support::Rng rng(GetParam() + 7);
  sim::Engine eng;
  int fired = 0;
  std::vector<sim::EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(eng.schedule_at(rng.uniform(0.0, 10.0), [&] { ++fired; }));
  }
  int cancelled = 0;
  for (std::size_t i = 0; i < ids.size(); i += 2) {
    eng.cancel(ids[i]);
    ++cancelled;
  }
  eng.run();
  EXPECT_EQ(fired, 100 - cancelled);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineStress, ::testing::Values(11, 22, 33));

// --- Fabric conservation -----------------------------------------------------

class EthernetStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EthernetStress, WorkConservationUnderRandomArrivals) {
  // However transfers interleave, a work-conserving fair-share link must
  // finish all bytes no earlier than bytes/capacity after the last idle
  // period, and every transfer must complete.
  support::Rng rng(GetParam());
  sim::Engine eng;
  net::EthernetSpec spec;
  spec.availability = net::dedicated_availability();
  net::SharedEthernet eth(eng, spec, 1);
  int completed = 0;
  double total_bytes = 0.0;
  const int kTransfers = 40;
  for (int i = 0; i < kTransfers; ++i) {
    const double at = rng.uniform(0.0, 5.0);
    const double bytes = rng.uniform(1e4, 5e5);
    total_bytes += bytes;
    eng.schedule_at(at, [&eth, bytes, &completed] {
      eth.start_transfer(bytes, [&completed] { ++completed; });
    });
  }
  eng.run();
  EXPECT_EQ(completed, kTransfers);
  // Finish no earlier than the pure-service lower bound.
  EXPECT_GE(eng.now() + 1e-6, total_bytes / spec.nominal_bandwidth);
  EXPECT_NEAR(eth.bytes_delivered(), total_bytes, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EthernetStress,
                         ::testing::Values(5, 15, 25, 35));

class SwitchedStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SwitchedStress, MaxMinRatesNeverOversubscribeLinks) {
  // Invariant of max-min fairness: at every instant, the sum of transfer
  // rates through any link never exceeds its capacity, and every transfer
  // eventually completes.
  support::Rng rng(GetParam());
  sim::Engine eng;
  net::SwitchedSpec spec;
  spec.hosts = 5;
  spec.link_bandwidth = 1.0e6;
  spec.latency = 0.0;
  net::SwitchedEthernet sw(eng, spec);
  int completed = 0;
  struct Flow {
    int src, dst;
  };
  std::vector<Flow> flows;
  const int kFlows = 25;
  // ids[i] must stay aligned with flows[i] even though start events fire
  // in time order, so each event writes its own slot.
  std::vector<net::TransferId> ids(kFlows, 0);
  for (int i = 0; i < kFlows; ++i) {
    const int src = static_cast<int>(rng.uniform_int(5));
    int dst = static_cast<int>(rng.uniform_int(5));
    if (dst == src) dst = (dst + 1) % 5;
    flows.push_back({src, dst});
    const double bytes = rng.uniform(5e4, 5e5);
    const double at = rng.uniform(0.0, 2.0);
    eng.schedule_at(at, [&sw, &ids, &completed, i, src, dst, bytes] {
      ids[static_cast<std::size_t>(i)] =
          sw.send(src, dst, bytes, [&completed] { ++completed; });
    });
  }
  // Audit link loads at random instants while transfers are in flight.
  for (int probe = 0; probe < 20; ++probe) {
    eng.schedule_at(rng.uniform(0.1, 3.0), [&] {
      std::vector<double> egress(5, 0.0);
      std::vector<double> ingress(5, 0.0);
      for (std::size_t i = 0; i < ids.size(); ++i) {
        if (ids[i] == 0) continue;  // not started yet
        const double rate = sw.transfer_rate(ids[i]);
        egress[static_cast<std::size_t>(flows[i].src)] += rate;
        ingress[static_cast<std::size_t>(flows[i].dst)] += rate;
      }
      for (int h = 0; h < 5; ++h) {
        EXPECT_LE(egress[static_cast<std::size_t>(h)],
                  spec.link_bandwidth * (1.0 + 1e-9));
        EXPECT_LE(ingress[static_cast<std::size_t>(h)],
                  spec.link_bandwidth * (1.0 + 1e-9));
      }
    });
  }
  eng.run();
  EXPECT_EQ(completed, kFlows);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SwitchedStress, ::testing::Values(41, 42, 43));

// --- Breakdown & Wilson utilities -------------------------------------------

TEST(Breakdown, ComponentsComposeToTotal) {
  const auto spec = cluster::platform1();
  sor::SorConfig cfg;
  cfg.n = 800;
  cfg.iterations = 12;
  const predict::SorStructuralModel model(spec, cfg);
  const std::vector<StochasticValue> loads{
      {0.48, 0.05}, {0.92, 0.03}, {0.92, 0.03}, {0.92, 0.03}};
  const auto env = model.make_env(loads, {0.525, 0.12});
  const auto b = model.breakdown(env);

  ASSERT_EQ(b.comp_per_host.size(), 4u);
  EXPECT_EQ(b.dominant_host, 0u);  // the loaded sparc2-a
  // Per-iteration mean = 2*(max comp) + 2*comm.
  EXPECT_NEAR(b.per_iteration.mean(),
              2.0 * b.comp_per_host[b.dominant_host].mean() +
                  2.0 * b.comm_per_phase.mean(),
              1e-9);
  // Total = iterations * per-iteration (related accumulation).
  EXPECT_NEAR(b.total.mean(), 12.0 * b.per_iteration.mean(), 1e-9);
  EXPECT_EQ(b.total, model.predict(env));
}

TEST(Wilson, KnownValuesAndMonotonicity) {
  // 13/16 ≈ 81%: the interval is wide — the paper's "~80%" over 16 points.
  const auto ci = stoch::wilson_interval(13, 16);
  EXPECT_LT(ci.lower, 0.70);
  EXPECT_GT(ci.upper, 0.90);
  // More trials narrow it.
  const auto big = stoch::wilson_interval(130, 160);
  EXPECT_GT(big.lower, ci.lower);
  EXPECT_LT(big.upper, ci.upper);
  // Degenerate edges stay within [0,1].
  const auto zero = stoch::wilson_interval(0, 10);
  EXPECT_NEAR(zero.lower, 0.0, 1e-12);
  EXPECT_GT(zero.upper, 0.0);
  const auto all = stoch::wilson_interval(10, 10);
  EXPECT_NEAR(all.upper, 1.0, 1e-12);
  EXPECT_LT(all.lower, 1.0);
  EXPECT_THROW((void)stoch::wilson_interval(5, 0), support::Error);
  EXPECT_THROW((void)stoch::wilson_interval(11, 10), support::Error);
}

}  // namespace
}  // namespace sspred
