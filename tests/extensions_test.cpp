// Tests for the smaller extensions: the adaptive-window forecaster,
// explicit-correlation arithmetic, and load-trace persistence.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "cluster/platform.hpp"
#include "machine/load_trace.hpp"
#include "nws/forecasters.hpp"
#include "stoch/arithmetic.hpp"
#include "stoch/montecarlo.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace sspred {
namespace {

// --- AdaptiveMean ---------------------------------------------------------

TEST(AdaptiveMean, ConstantSeriesIsExact) {
  const std::vector<double> h(80, 0.48);
  EXPECT_DOUBLE_EQ(nws::AdaptiveMean().predict(h), 0.48);
}

TEST(AdaptiveMean, PrefersShortWindowAfterLevelShift) {
  // 60 samples at 0.2, then 20 at 0.8: a long window drags the estimate
  // down; the adaptive forecaster should sit near the new level.
  std::vector<double> h(60, 0.2);
  h.insert(h.end(), 20, 0.8);
  const double pred = nws::AdaptiveMean().predict(h);
  EXPECT_GT(pred, 0.7);
}

TEST(AdaptiveMean, PrefersLongWindowOnWhiteNoise) {
  support::Rng rng(3);
  std::vector<double> h;
  for (int i = 0; i < 200; ++i) h.push_back(rng.normal(0.5, 0.1));
  const double pred = nws::AdaptiveMean().predict(h);
  EXPECT_NEAR(pred, 0.5, 0.06);  // near the long-run mean, not the last value
}

TEST(AdaptiveMean, ValidatesWindows) {
  EXPECT_THROW(nws::AdaptiveMean(std::vector<std::size_t>{}), support::Error);
  EXPECT_THROW(nws::AdaptiveMean({10, 5}), support::Error);
  EXPECT_THROW(nws::AdaptiveMean({0, 5}), support::Error);
}

TEST(AdaptiveMean, PresentInDefaultBank) {
  const auto bank = nws::default_bank();
  bool found = false;
  for (const auto& f : bank) {
    if (f->name() == "adaptive") found = true;
  }
  EXPECT_TRUE(found);
}

// --- Correlated arithmetic -------------------------------------------------

TEST(CorrelatedAdd, ReducesToKnownRegimes) {
  const stoch::StochasticValue x(10.0, 3.0);
  const stoch::StochasticValue y(5.0, 4.0);
  const auto rho0 = stoch::add_correlated(x, y, 0.0);
  EXPECT_DOUBLE_EQ(rho0.halfwidth(),
                   stoch::add(x, y, stoch::Dependence::kUnrelated).halfwidth());
  const auto rho1 = stoch::add_correlated(x, y, 1.0);
  EXPECT_DOUBLE_EQ(rho1.halfwidth(),
                   stoch::add(x, y, stoch::Dependence::kRelated).halfwidth());
}

TEST(CorrelatedAdd, NegativeCorrelationCancels) {
  const stoch::StochasticValue x(10.0, 3.0);
  const stoch::StochasticValue y(5.0, 3.0);
  const auto anti = stoch::add_correlated(x, y, -1.0);
  EXPECT_NEAR(anti.halfwidth(), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(anti.mean(), 15.0);
}

class CorrelatedAddMc : public ::testing::TestWithParam<double> {};

TEST_P(CorrelatedAddMc, MatchesGaussianCopulaSampling) {
  const double rho = GetParam();
  const stoch::StochasticValue x(10.0, 2.0);
  const stoch::StochasticValue y(5.0, 1.5);
  support::Rng rng(11);
  const auto closed = stoch::add_correlated(x, y, rho);
  const auto empirical = stoch::empirical_combine_correlated(
      x, y, rho, [](double a, double b) { return a + b; }, rng, 200'000);
  EXPECT_NEAR(closed.mean(), empirical.mean(), 0.03);
  EXPECT_NEAR(closed.halfwidth(), empirical.halfwidth(), 0.04);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CorrelatedAddMc,
                         ::testing::Values(-0.8, -0.3, 0.0, 0.5, 0.9));

class CorrelatedMulMc : public ::testing::TestWithParam<double> {};

TEST_P(CorrelatedMulMc, DeltaMethodTracksSampling) {
  const double rho = GetParam();
  const stoch::StochasticValue x(10.0, 0.8);
  const stoch::StochasticValue y(20.0, 1.2);
  support::Rng rng(13);
  const auto closed = stoch::mul_correlated(x, y, rho);
  const auto empirical = stoch::empirical_combine_correlated(
      x, y, rho, [](double a, double b) { return a * b; }, rng, 200'000);
  EXPECT_NEAR(closed.mean(), empirical.mean(),
              0.01 * std::abs(empirical.mean()));
  EXPECT_NEAR(closed.halfwidth(), empirical.halfwidth(),
              0.06 * empirical.halfwidth() + 0.05);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CorrelatedMulMc,
                         ::testing::Values(-0.7, 0.0, 0.6, 1.0));

TEST(Correlated, RejectsOutOfRangeRho) {
  const stoch::StochasticValue x(1.0, 0.1);
  EXPECT_THROW((void)stoch::add_correlated(x, x, 1.5), support::Error);
  EXPECT_THROW((void)stoch::mul_correlated(x, x, -1.5), support::Error);
}

// --- Trace persistence ------------------------------------------------------

TEST(TraceIo, SaveLoadRoundTrip) {
  const machine::LoadTrace original = machine::LoadTrace::generate(
      cluster::platform2_load(), 200, 5.0, 17);
  const std::string path = "/tmp/sspred_trace_test.csv";
  original.save_csv(path);
  const machine::LoadTrace loaded = machine::LoadTrace::load_csv(path);
  ASSERT_EQ(loaded.samples().size(), original.samples().size());
  EXPECT_DOUBLE_EQ(loaded.sample_interval(), 5.0);
  for (std::size_t i = 0; i < loaded.samples().size(); ++i) {
    EXPECT_NEAR(loaded.samples()[i], original.samples()[i], 1e-9);
  }
  std::filesystem::remove(path);
}

TEST(TraceIo, LoadRejectsBadFiles) {
  EXPECT_THROW((void)machine::LoadTrace::load_csv("/tmp/does_not_exist.csv"),
               support::Error);
  const std::string path = "/tmp/sspred_trace_bad.csv";
  {
    std::ofstream out(path);
    out << "wrong,header\n1,0.5\n";
  }
  EXPECT_THROW((void)machine::LoadTrace::load_csv(path), support::Error);
  std::filesystem::remove(path);
}

TEST(TraceIo, LoadedTraceBehavesLikeOriginal) {
  const machine::LoadTrace original = machine::LoadTrace::generate(
      cluster::platform1_load(true), 100, 1.0, 19);
  const std::string path = "/tmp/sspred_trace_replay.csv";
  original.save_csv(path);
  const machine::LoadTrace loaded = machine::LoadTrace::load_csv(path);
  EXPECT_NEAR(loaded.finish_time(3.0, 10.0), original.finish_time(3.0, 10.0),
              1e-6);
  EXPECT_NEAR(loaded.average(0.0, 50.0), original.average(0.0, 50.0), 1e-9);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace sspred
