// Tests for the frontend wire protocol (src/serve/wire.hpp): round-trip
// fidelity, strict rejection of malformed frames, incremental frame
// reassembly from arbitrary chunkings, and an end-to-end loopback
// socket-pair session against a live sharded PredictionService (the
// codec is transport-agnostic; the socket test proves it composes with a
// real byte stream).
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "cluster/platform.hpp"
#include "serve/service.hpp"
#include "serve/wire.hpp"
#include "support/error.hpp"

namespace sspred::serve {
namespace {

PredictRequest sample_request() {
  PredictRequest request;
  request.model_id = "sor/main";
  request.mode = Mode::kMonteCarlo;
  request.loads = {stoch::StochasticValue(0.8, 0.1),
                   stoch::StochasticValue(0.65, 0.05)};
  request.bwavail = stoch::StochasticValue(0.9, 0.02);
  request.bwavail_resource = "net/segment0";
  request.trials = 4096;
  request.seed = 1234567890123ULL;
  request.precision = 0.025;
  request.precision_relative = true;
  request.min_trials = 96;
  return request;
}

TEST(Wire, RequestRoundTripsEveryField) {
  const PredictRequest request = sample_request();
  const auto bytes = encode_request(request, 0xdeadbeefcafef00dULL);
  // The frame is length-prefixed; decode takes the payload.
  ASSERT_GE(bytes.size(), 4u);
  const auto decoded = decode_request(bytes.data() + 4, bytes.size() - 4);
  EXPECT_EQ(decoded.client_tag, 0xdeadbeefcafef00dULL);
  EXPECT_EQ(decoded.request.model_id, request.model_id);
  EXPECT_EQ(decoded.request.mode, request.mode);
  EXPECT_EQ(decoded.request.loads, request.loads);
  EXPECT_EQ(decoded.request.resources, request.resources);
  EXPECT_EQ(decoded.request.bwavail, request.bwavail);
  EXPECT_EQ(decoded.request.bwavail_resource, request.bwavail_resource);
  EXPECT_EQ(decoded.request.trials, request.trials);
  EXPECT_EQ(decoded.request.seed, request.seed);
  EXPECT_EQ(decoded.request.precision, request.precision);
  EXPECT_EQ(decoded.request.precision_relative, request.precision_relative);
  EXPECT_EQ(decoded.request.min_trials, request.min_trials);
}

TEST(Wire, ResourceRequestRoundTrips) {
  PredictRequest request;
  request.model_id = "jacobi";
  request.mode = Mode::kStochastic;
  request.resources = {"cpu/a", "cpu/b", "cpu/c"};
  const auto bytes = encode_request(request, 7);
  const auto decoded = decode_request(bytes.data() + 4, bytes.size() - 4);
  EXPECT_EQ(decoded.request.resources, request.resources);
  EXPECT_TRUE(decoded.request.loads.empty());
}

TEST(Wire, ResponseRoundTripsEveryField) {
  PredictResult result;
  result.status = PredictResult::Status::kError;
  result.error = "resource 'cpu/z' not in epoch 12";
  result.value = stoch::StochasticValue(3.25, 0.5);
  result.point = 3.25;
  result.request_id = (42u << 8) | 3u;
  result.source = 2;  // learn::Source::kBlended
  result.epoch_version = 12;
  result.batch_size = 6;
  result.latency_seconds = 0.125;
  result.mc_trials = 1536;
  result.mc_ci_halfwidth = 0.0125;
  result.precision_met = false;
  const auto bytes = encode_response(result, 99);
  const auto decoded = decode_response(bytes.data() + 4, bytes.size() - 4);
  EXPECT_EQ(decoded.client_tag, 99u);
  EXPECT_EQ(decoded.result.status, result.status);
  EXPECT_EQ(decoded.result.error, result.error);
  EXPECT_EQ(decoded.result.value, result.value);
  EXPECT_EQ(decoded.result.point, result.point);
  EXPECT_EQ(decoded.result.request_id, result.request_id);
  EXPECT_EQ(decoded.result.source, result.source);
  EXPECT_EQ(decoded.result.epoch_version, result.epoch_version);
  EXPECT_EQ(decoded.result.batch_size, result.batch_size);
  EXPECT_EQ(decoded.result.latency_seconds, result.latency_seconds);
  EXPECT_EQ(decoded.result.mc_trials, result.mc_trials);
  EXPECT_EQ(decoded.result.mc_ci_halfwidth, result.mc_ci_halfwidth);
  EXPECT_EQ(decoded.result.precision_met, result.precision_met);
}

TEST(Wire, MalformedFramesThrowStructuredErrors) {
  const auto good = encode_request(sample_request(), 1);
  const std::uint8_t* payload = good.data() + 4;
  const std::size_t size = good.size() - 4;

  // Bad magic.
  {
    auto bad = std::vector<std::uint8_t>(payload, payload + size);
    bad[0] ^= 0xff;
    EXPECT_THROW((void)decode_request(bad.data(), bad.size()),
                 support::Error);
  }
  // Unknown version.
  {
    auto bad = std::vector<std::uint8_t>(payload, payload + size);
    bad[2] = 42;
    EXPECT_THROW((void)decode_request(bad.data(), bad.size()),
                 support::Error);
  }
  // Response parsed as request (type mismatch).
  {
    const auto response = encode_response(PredictResult{}, 1);
    EXPECT_THROW(
        (void)decode_request(response.data() + 4, response.size() - 4),
        support::Error);
  }
  // Truncation at every prefix must throw, never read out of bounds.
  for (std::size_t cut = 0; cut < size; ++cut) {
    EXPECT_THROW((void)decode_request(payload, cut), support::Error);
  }
  // Trailing garbage.
  {
    auto bad = std::vector<std::uint8_t>(payload, payload + size);
    bad.push_back(0);
    EXPECT_THROW((void)decode_request(bad.data(), bad.size()),
                 support::Error);
  }
  // Unknown mode byte.
  {
    auto bad = std::vector<std::uint8_t>(payload, payload + size);
    // Payload header (12 bytes) + model_id (4 + len) puts the mode next.
    const std::size_t mode_at = 12 + 4 + sample_request().model_id.size();
    bad[mode_at] = 0x7f;
    EXPECT_THROW((void)decode_request(bad.data(), bad.size()),
                 support::Error);
  }
}

TEST(Wire, ControlFramesRoundTrip) {
  // Heartbeat.
  const auto hb = encode_heartbeat(0x1122334455667788ULL);
  EXPECT_EQ(frame_type(hb.data() + 4, hb.size() - 4), WireType::kHeartbeat);
  EXPECT_EQ(decode_heartbeat(hb.data() + 4, hb.size() - 4),
            0x1122334455667788ULL);

  HeartbeatAck ack;
  ack.client_tag = 9;
  ack.epoch_version = 42;
  ack.queue_depth = 17;
  const auto hba = encode_heartbeat_ack(ack);
  const auto ack2 = decode_heartbeat_ack(hba.data() + 4, hba.size() - 4);
  EXPECT_EQ(ack2.client_tag, 9u);
  EXPECT_EQ(ack2.epoch_version, 42u);
  EXPECT_EQ(ack2.queue_depth, 17u);

  // Epoch publish carries a full bindings snapshot.
  EpochFrame epoch;
  epoch.client_tag = 3;
  epoch.version = 12;
  epoch.bindings.emplace("cpu/a", stoch::StochasticValue(0.7, 0.1));
  epoch.bindings.emplace("net/segment0", stoch::StochasticValue(0.9, 0.02));
  const auto ep = encode_epoch_publish(epoch);
  EXPECT_EQ(frame_type(ep.data() + 4, ep.size() - 4),
            WireType::kEpochPublish);
  const auto epoch2 = decode_epoch_publish(ep.data() + 4, ep.size() - 4);
  EXPECT_EQ(epoch2.client_tag, 3u);
  EXPECT_EQ(epoch2.version, 12u);
  EXPECT_EQ(epoch2.bindings, epoch.bindings);

  EpochAck ea;
  ea.client_tag = 3;
  ea.version = 12;
  const auto eab = encode_epoch_ack(ea);
  EXPECT_EQ(decode_epoch_ack(eab.data() + 4, eab.size() - 4).version, 12u);
}

TEST(Wire, FrameTypeValidatesBeforePeeking) {
  const auto good = encode_heartbeat(1);
  // Too short to carry a header.
  EXPECT_THROW((void)frame_type(good.data() + 4, 3), support::Error);
  // Bad magic / version / type byte.
  auto bad = std::vector<std::uint8_t>(good.begin() + 4, good.end());
  bad[0] ^= 0xff;
  EXPECT_THROW((void)frame_type(bad.data(), bad.size()), support::Error);
  bad = std::vector<std::uint8_t>(good.begin() + 4, good.end());
  bad[2] = 99;
  EXPECT_THROW((void)frame_type(bad.data(), bad.size()), support::Error);
  bad = std::vector<std::uint8_t>(good.begin() + 4, good.end());
  bad[3] = 0;  // type 0: outside every known frame type
  EXPECT_THROW((void)frame_type(bad.data(), bad.size()), support::Error);
  bad[3] = 7;
  EXPECT_THROW((void)frame_type(bad.data(), bad.size()), support::Error);
}

// Truncating any control frame at every byte must throw, never read out
// of bounds (the counterpart of the request-frame truncation sweep).
TEST(Wire, TruncatedControlFramesThrow) {
  EpochFrame epoch;
  epoch.version = 2;
  epoch.bindings.emplace("cpu/a", stoch::StochasticValue(0.5, 0.1));
  const std::vector<std::vector<std::uint8_t>> frames = {
      encode_heartbeat(1), encode_heartbeat_ack({1, 2, 3}),
      encode_epoch_publish(epoch), encode_epoch_ack({1, 2})};
  const auto check_cuts = [](const std::vector<std::uint8_t>& frame,
                             auto decoder) {
    for (std::size_t cut = 0; cut + 4 < frame.size(); ++cut) {
      EXPECT_THROW((void)decoder(frame.data() + 4, cut), support::Error);
    }
  };
  check_cuts(frames[0], decode_heartbeat);
  check_cuts(frames[1], decode_heartbeat_ack);
  check_cuts(frames[2], decode_epoch_publish);
  check_cuts(frames[3], decode_epoch_ack);
  // And trailing garbage is rejected too.
  for (auto frame : frames) {
    frame.push_back(0);
    const auto decode_any = [&] {
      switch (frame_type(frame.data() + 4, frame.size() - 4)) {
        case WireType::kHeartbeat:
          return (void)decode_heartbeat(frame.data() + 4, frame.size() - 4);
        case WireType::kHeartbeatAck:
          return (void)decode_heartbeat_ack(frame.data() + 4,
                                            frame.size() - 4);
        case WireType::kEpochPublish:
          return (void)decode_epoch_publish(frame.data() + 4,
                                            frame.size() - 4);
        default:
          return (void)decode_epoch_ack(frame.data() + 4, frame.size() - 4);
      }
    };
    EXPECT_THROW(decode_any(), support::Error);
  }
}

// A forged element count must be rejected BEFORE any allocation sized by
// it: a 16-byte frame declaring 2^32-1 loads would otherwise reserve
// ~68GB on the way to the bounds check.
TEST(Wire, ForgedElementCountsCannotBalloonAllocation) {
  PredictRequest request;
  request.model_id = "m";
  request.loads = {stoch::StochasticValue(0.5, 0.1)};
  auto frame = encode_request(request, 1);
  // Locate the loads count: header (12) + model_id (4 + 1) + mode (1).
  const std::size_t count_at = 4 + 12 + 4 + 1 + 1;
  ASSERT_LT(count_at + 4, frame.size());
  for (const std::uint8_t byte : {0xff, 0x7f}) {
    auto forged = frame;
    forged[count_at] = 0xff;
    forged[count_at + 1] = 0xff;
    forged[count_at + 2] = 0xff;
    forged[count_at + 3] = byte;
    try {
      (void)decode_request(forged.data() + 4, forged.size() - 4);
      FAIL() << "forged count accepted";
    } catch (const support::Error& e) {
      EXPECT_NE(std::string(e.what()).find("count"), std::string::npos);
    }
  }

  // Same for a forged epoch binding count.
  EpochFrame epoch;
  epoch.version = 1;
  epoch.bindings.emplace("a", stoch::StochasticValue(0.5, 0.1));
  auto ep = encode_epoch_publish(epoch);
  const std::size_t bindings_at = 4 + 12 + 8;  // header + tag? (see layout)
  ASSERT_LT(bindings_at + 4, ep.size());
  auto forged = ep;
  forged[bindings_at] = 0xff;
  forged[bindings_at + 1] = 0xff;
  forged[bindings_at + 2] = 0xff;
  forged[bindings_at + 3] = 0xff;
  EXPECT_THROW(
      (void)decode_epoch_publish(forged.data() + 4, forged.size() - 4),
      support::Error);
}

// Deterministic mutation fuzz: random single-byte flips and truncations
// of valid frames must either decode cleanly or throw support::Error —
// never crash, hang, or trip a sanitizer (this test runs under
// ASan/UBSan in CI).
TEST(Wire, MutationFuzzNeverEscapesStructuredErrors) {
  EpochFrame epoch;
  epoch.version = 5;
  epoch.bindings.emplace("cpu/a", stoch::StochasticValue(0.7, 0.1));
  epoch.bindings.emplace("cpu/b", stoch::StochasticValue(0.8, 0.2));
  const std::vector<std::vector<std::uint8_t>> seeds = {
      encode_request(sample_request(), 1),
      encode_response(PredictResult{}, 2),
      encode_heartbeat(3),
      encode_heartbeat_ack({4, 5, 6}),
      encode_epoch_publish(epoch),
      encode_epoch_ack({7, 8}),
  };

  // Tiny deterministic LCG — the point is coverage, not randomness.
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  const auto next = [&state](std::uint64_t bound) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return (state >> 33) % bound;
  };

  int survived = 0;
  for (int iter = 0; iter < 4000; ++iter) {
    auto frame = seeds[next(seeds.size())];
    std::vector<std::uint8_t> payload(frame.begin() + 4, frame.end());
    // Mutate 1-4 bytes, then maybe truncate.
    const std::size_t flips = 1 + next(4);
    for (std::size_t f = 0; f < flips && !payload.empty(); ++f) {
      payload[next(payload.size())] ^=
          static_cast<std::uint8_t>(1 + next(255));
    }
    std::size_t size = payload.size();
    if (next(3) == 0) size = next(size + 1);
    try {
      switch (frame_type(payload.data(), size)) {
        case WireType::kRequest:
          (void)decode_request(payload.data(), size);
          break;
        case WireType::kResponse:
          (void)decode_response(payload.data(), size);
          break;
        case WireType::kHeartbeat:
          (void)decode_heartbeat(payload.data(), size);
          break;
        case WireType::kHeartbeatAck:
          (void)decode_heartbeat_ack(payload.data(), size);
          break;
        case WireType::kEpochPublish:
          (void)decode_epoch_publish(payload.data(), size);
          break;
        case WireType::kEpochAck:
          (void)decode_epoch_ack(payload.data(), size);
          break;
      }
      ++survived;  // mutation left a decodable frame — fine
    } catch (const support::Error&) {
      // The only acceptable failure mode.
    }
  }
  // Sanity: the corpus explored both outcomes.
  EXPECT_GT(survived, 0);
}

TEST(Wire, FrameBufferReassemblesArbitraryChunkings) {
  const auto a = encode_request(sample_request(), 1);
  const auto b = encode_response(PredictResult{}, 2);
  std::vector<std::uint8_t> stream;
  stream.insert(stream.end(), a.begin(), a.end());
  stream.insert(stream.end(), b.begin(), b.end());

  // Feed one byte at a time; frames must pop out whole and in order.
  FrameBuffer buffer;
  std::vector<std::vector<std::uint8_t>> frames;
  for (const std::uint8_t byte : stream) {
    buffer.feed(&byte, 1);
    while (auto frame = buffer.take_frame()) {
      frames.push_back(std::move(*frame));
    }
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0],
            std::vector<std::uint8_t>(a.begin() + 4, a.end()));
  EXPECT_EQ(frames[1],
            std::vector<std::uint8_t>(b.begin() + 4, b.end()));
  EXPECT_EQ(buffer.pending_bytes(), 0u);

  // Both frames in a single feed work too.
  FrameBuffer bulk;
  bulk.feed(stream.data(), stream.size());
  EXPECT_TRUE(bulk.take_frame().has_value());
  EXPECT_TRUE(bulk.take_frame().has_value());
  EXPECT_FALSE(bulk.take_frame().has_value());
}

TEST(Wire, FrameBufferRejectsOversizedLengthPrefix) {
  FrameBuffer buffer(64);
  const std::uint8_t huge[4] = {0xff, 0xff, 0xff, 0x7f};
  buffer.feed(huge, sizeof huge);
  EXPECT_THROW((void)buffer.take_frame(), support::Error);
}

// End to end over a real byte stream: a server thread owns a sharded
// PredictionService and speaks the wire protocol over one end of a
// loopback socket pair; the client pipelines tagged requests over the
// other end and matches responses by tag.
TEST(Wire, LoopbackSocketSessionServesShardedPredictions) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

  constexpr int kRequests = 24;
  std::thread server([server_fd = fds[0]] {
    ServiceOptions options;
    options.shards = 2;
    options.workers = 2;
    PredictionService service(options);
    ModelSpec spec;
    spec.app = ModelSpec::App::kSor;
    spec.platform = cluster::dedicated_platform(2);
    spec.config.n = 150;
    spec.config.iterations = 5;
    service.register_model("sor", spec);
    spec.config.n = 250;
    service.register_model("sor-big", spec);

    FrameBuffer frames;
    std::uint8_t chunk[256];
    int served = 0;
    while (served < kRequests) {
      const ssize_t n = read(server_fd, chunk, sizeof chunk);
      ASSERT_GT(n, 0);
      frames.feed(chunk, static_cast<std::size_t>(n));
      while (auto frame = frames.take_frame()) {
        const auto decoded = decode_request(frame->data(), frame->size());
        const auto result =
            service.submit(decoded.request).get();  // closed loop per frame
        const auto reply = encode_response(result, decoded.client_tag);
        std::size_t off = 0;
        while (off < reply.size()) {
          const ssize_t w =
              write(server_fd, reply.data() + off, reply.size() - off);
          ASSERT_GT(w, 0);
          off += static_cast<std::size_t>(w);
        }
        ++served;
      }
    }
    close(server_fd);
  });

  // Client: pipeline all requests, then collect all responses.
  const int client_fd = fds[1];
  std::map<std::uint64_t, std::string> sent;  // tag -> model id
  for (int i = 0; i < kRequests; ++i) {
    PredictRequest request;
    request.model_id = i % 2 == 0 ? "sor" : "sor-big";
    request.loads = {stoch::StochasticValue(0.7, 0.1),
                     stoch::StochasticValue(0.75, 0.1)};
    const auto tag = static_cast<std::uint64_t>(1000 + i);
    sent.emplace(tag, request.model_id);
    const auto bytes = encode_request(request, tag);
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t w =
          write(client_fd, bytes.data() + off, bytes.size() - off);
      ASSERT_GT(w, 0);
      off += static_cast<std::size_t>(w);
    }
  }

  FrameBuffer frames;
  std::uint8_t chunk[256];
  std::map<std::uint64_t, PredictResult> received;
  while (received.size() < sent.size()) {
    const ssize_t n = read(client_fd, chunk, sizeof chunk);
    ASSERT_GT(n, 0);
    frames.feed(chunk, static_cast<std::size_t>(n));
    while (auto frame = frames.take_frame()) {
      const auto decoded = decode_response(frame->data(), frame->size());
      received.emplace(decoded.client_tag, decoded.result);
    }
  }
  server.join();
  close(client_fd);

  ASSERT_EQ(received.size(), sent.size());
  // Both families resolve; same-family predictions agree (same loads),
  // different structures differ.
  double sor_value = 0.0, big_value = 0.0;
  for (const auto& [tag, result] : received) {
    ASSERT_TRUE(sent.contains(tag));
    ASSERT_TRUE(result.ok()) << result.error;
    EXPECT_GT(result.point, 0.0);
    (sent.at(tag) == "sor" ? sor_value : big_value) = result.point;
  }
  EXPECT_NE(sor_value, big_value);
}

}  // namespace
}  // namespace sspred::serve
