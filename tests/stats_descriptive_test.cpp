// Unit tests for descriptive statistics: batch summaries, online Welford
// accumulation, quantiles, autocorrelation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/descriptive.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace sspred::stats {
namespace {

TEST(Summarize, KnownSample) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.variance, 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Summarize, SingleValue) {
  const std::vector<double> xs{3.5};
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.variance, 0.0);
  EXPECT_DOUBLE_EQ(s.sd, 0.0);
}

TEST(Summarize, EmptyThrows) {
  const std::vector<double> xs;
  EXPECT_THROW((void)summarize(xs), support::Error);
}

TEST(Summarize, SkewnessSignDetectsAsymmetry) {
  support::Rng rng(5);
  std::vector<double> right_skew;
  for (int i = 0; i < 20'000; ++i) right_skew.push_back(rng.exponential(1.0));
  EXPECT_GT(summarize(right_skew).skewness, 1.5);

  std::vector<double> symmetric;
  for (int i = 0; i < 20'000; ++i) symmetric.push_back(rng.normal());
  EXPECT_NEAR(summarize(symmetric).skewness, 0.0, 0.1);
}

TEST(Summarize, KurtosisOfNormalIsNearZero) {
  support::Rng rng(6);
  std::vector<double> xs;
  for (int i = 0; i < 50'000; ++i) xs.push_back(rng.normal());
  EXPECT_NEAR(summarize(xs).kurtosis, 0.0, 0.15);
}

TEST(Quantile, MedianOfOddSample) {
  const std::vector<double> xs{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(median(xs), 2.0);
}

TEST(Quantile, InterpolatesBetweenPoints) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 5.0);
}

TEST(Quantile, ExtremesAreMinMax) {
  const std::vector<double> xs{5.0, 1.0, 9.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 9.0);
}

TEST(Quantile, OutOfRangeThrows) {
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_THROW((void)quantile(xs, 1.5), support::Error);
  EXPECT_THROW((void)quantile(xs, -0.1), support::Error);
}

class QuantileMonotoneTest : public ::testing::TestWithParam<double> {};

TEST_P(QuantileMonotoneTest, QuantileIsMonotoneInQ) {
  support::Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.normal(0.0, 3.0));
  const double q = GetParam();
  EXPECT_LE(quantile(xs, q), quantile(xs, std::min(1.0, q + 0.1)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, QuantileMonotoneTest,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75, 0.9));

TEST(OnlineStats, MatchesBatchSummary) {
  support::Rng rng(13);
  std::vector<double> xs;
  OnlineStats os;
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.normal(2.0, 5.0);
    xs.push_back(x);
    os.add(x);
  }
  const Summary s = summarize(xs);
  EXPECT_EQ(os.count(), s.count);
  EXPECT_NEAR(os.mean(), s.mean, 1e-10);
  EXPECT_NEAR(os.variance(), s.variance, 1e-8);
  EXPECT_DOUBLE_EQ(os.min(), s.min);
  EXPECT_DOUBLE_EQ(os.max(), s.max);
}

TEST(OnlineStats, MergeEqualsSingleStream) {
  support::Rng rng(17);
  OnlineStats merged;
  OnlineStats a;
  OnlineStats b;
  for (int i = 0; i < 5'000; ++i) {
    const double x = rng.normal();
    merged.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), merged.count());
  EXPECT_NEAR(a.mean(), merged.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), merged.variance(), 1e-8);
}

TEST(OnlineStats, MergeWithEmptyIsNoop) {
  OnlineStats a;
  a.add(1.0);
  a.add(2.0);
  OnlineStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(Autocorrelation, WhiteNoiseNearZero) {
  support::Rng rng(19);
  std::vector<double> xs;
  for (int i = 0; i < 20'000; ++i) xs.push_back(rng.normal());
  EXPECT_NEAR(autocorrelation(xs, 1), 0.0, 0.02);
}

TEST(Autocorrelation, Ar1IsPositive) {
  support::Rng rng(23);
  std::vector<double> xs{0.0};
  for (int i = 1; i < 20'000; ++i) {
    xs.push_back(0.9 * xs.back() + rng.normal());
  }
  EXPECT_GT(autocorrelation(xs, 1), 0.8);
}

TEST(FractionWithin, CountsClosedInterval) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(fraction_within(xs, 2.0, 4.0), 0.6);
  EXPECT_DOUBLE_EQ(fraction_within(xs, 0.0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(fraction_within(xs, 6.0, 7.0), 0.0);
}

TEST(VarianceHelpers, TinySamples) {
  const std::vector<double> one{5.0};
  EXPECT_DOUBLE_EQ(variance(one), 0.0);
  EXPECT_DOUBLE_EQ(stddev(one), 0.0);
  const std::vector<double> two{1.0, 3.0};
  EXPECT_DOUBLE_EQ(variance(two), 2.0);
}

TEST(P2QuantileSketch, ExactForFirstFiveObservations) {
  P2Quantile q(0.5);
  EXPECT_DOUBLE_EQ(q.value(), 0.0);  // empty
  std::vector<double> xs;
  for (const double x : {7.0, 1.0, 5.0, 3.0, 9.0}) {
    q.add(x);
    xs.push_back(x);
    std::vector<double> sorted = xs;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_DOUBLE_EQ(q.value(), quantile_sorted(sorted, 0.5))
        << "after " << xs.size() << " observations";
  }
  EXPECT_EQ(q.count(), 5u);
  EXPECT_DOUBLE_EQ(q.p(), 0.5);
}

TEST(P2QuantileSketch, ConvergesToBatchQuantileOnNormalStream) {
  support::Rng rng(31);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) xs.push_back(rng.normal(10.0, 2.0));
  for (const double p : {0.5, 0.9, 0.95, 0.99}) {
    P2Quantile sketch(p);
    for (const double x : xs) sketch.add(x);
    const double exact = quantile(xs, p);
    // O(1)-memory estimate tracks the batch quantile to a few percent
    // of the distribution's sd.
    EXPECT_NEAR(sketch.value(), exact, 0.15) << "p=" << p;
    EXPECT_EQ(sketch.count(), xs.size());
  }
}

TEST(P2QuantileSketch, TracksShiftedStream) {
  // The markers adapt when the stream's distribution moves.
  support::Rng rng(37);
  P2Quantile sketch(0.95);
  for (int i = 0; i < 2000; ++i) sketch.add(rng.normal(0.0, 1.0));
  for (int i = 0; i < 20000; ++i) sketch.add(rng.normal(50.0, 1.0));
  // Dominated by the shifted regime: its 95th percentile is ~51.6.
  EXPECT_NEAR(sketch.value(), 51.6, 1.5);
}

TEST(P2QuantileSketch, RejectsDegenerateProbabilities) {
  EXPECT_THROW(P2Quantile(0.0), support::Error);
  EXPECT_THROW(P2Quantile(1.0), support::Error);
  EXPECT_THROW(P2Quantile(-0.5), support::Error);
}

}  // namespace
}  // namespace sspred::stats
