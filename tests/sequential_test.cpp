// Tests for sequential stopping (stats/sequential.*) and the adaptive
// Monte-Carlo engine entry points (ir::Program::sample_adaptive and
// sample_adaptive_fused).
//
// Three contracts:
//   * statistical honesty — the CI reported at the stopping time covers
//     the true mean at ~the nominal z=2 rate (95.45%) on normal,
//     lognormal and trimodal generators, despite the optional stopping;
//   * determinism — a fixed seed reproduces the exact trial count, and
//     tightening the target never shrinks it;
//   * engine bit-exactness — a fixed-rule adaptive run is byte-identical
//     to sample_trials (values and RNG stream), and every fused lane is
//     byte-identical to its solo adaptive run even as converged lanes
//     retire and compact out of the sweep mid-run.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <functional>
#include <limits>
#include <vector>

#include "model/compile.hpp"
#include "model/expr.hpp"
#include "model/ir.hpp"
#include "stats/sequential.hpp"
#include "stoch/stochastic_value.hpp"
#include "support/rng.hpp"

namespace sspred::stats {
namespace {

constexpr double kNominal = 0.9545;  // two-sided z = 2

/// Draws through the engine's own checkpoint schedule until the rule
/// stops, exactly as the blocked engine does between blocks.
struct StoppedRun {
  double mean = 0.0;
  double ci = 0.0;
  std::size_t count = 0;
};

StoppedRun run_sequential(const StopRule& rule,
                          const std::function<double()>& draw) {
  SequentialEstimator est(rule);
  for (;;) {
    const std::size_t width = next_block_width(est.count(), rule, 1024);
    if (width == 0) break;
    for (std::size_t i = 0; i < width; ++i) est.add(draw());
    if (est.should_stop()) break;
  }
  return {est.mean(), est.ci_halfwidth(), est.count()};
}

TEST(AdaptiveStop, FixedRuleIgnoresPrecisionAndRunsMaxTrials) {
  support::Rng rng(1);
  const StopRule rule = StopRule::fixed(777);
  EXPECT_LE(rule.target, 0.0);
  const StoppedRun run = run_sequential(rule, [&] { return rng.normal(); });
  EXPECT_EQ(run.count, 777u);
}

TEST(AdaptiveStop, PrecisionStopHonorsMinAndMaxClamps) {
  // A constant stream has zero variance: precision is met immediately,
  // but not before min_trials.
  StopRule rule = StopRule::absolute(0.1, 4096, 100);
  StoppedRun run = run_sequential(rule, [] { return 3.0; });
  EXPECT_EQ(run.count, 100u);

  // An impossible target runs to the max clamp.
  support::Rng rng(2);
  rule = StopRule::absolute(1e-12, 512, 64);
  run = run_sequential(rule, [&] { return rng.normal(); });
  EXPECT_EQ(run.count, 512u);
  SequentialEstimator est(rule);
  est.add(0.0);
  est.add(1.0);
  EXPECT_FALSE(est.precision_met());
}

TEST(AdaptiveStop, NextBlockWidthSchedules) {
  // Fixed rules: straight block_cap strides with a partial last block —
  // the sample_trials schedule.
  const StopRule fixed = StopRule::fixed(2500);
  EXPECT_EQ(next_block_width(0, fixed, 1024), 1024u);
  EXPECT_EQ(next_block_width(1024, fixed, 1024), 1024u);
  EXPECT_EQ(next_block_width(2048, fixed, 1024), 452u);
  EXPECT_EQ(next_block_width(2500, fixed, 1024), 0u);

  // Precision rules: doubling checkpoints from min_trials, then full
  // blocks, always clamped to max_trials.
  const StopRule prec = StopRule::absolute(0.01, 5000, 64);
  EXPECT_EQ(next_block_width(0, prec, 1024), 64u);
  EXPECT_EQ(next_block_width(64, prec, 1024), 64u);
  EXPECT_EQ(next_block_width(128, prec, 1024), 128u);
  EXPECT_EQ(next_block_width(512, prec, 1024), 512u);
  EXPECT_EQ(next_block_width(2048, prec, 1024), 1024u);
  EXPECT_EQ(next_block_width(4500, prec, 1024), 500u);
  EXPECT_EQ(next_block_width(5000, prec, 1024), 0u);
}

TEST(AdaptiveStop, DeterministicTrialCountUnderFixedSeed) {
  const StopRule rule = StopRule::absolute(0.05, 100'000, 64);
  std::vector<std::size_t> counts;
  for (int run = 0; run < 2; ++run) {
    support::Rng rng(99);
    const StoppedRun r =
        run_sequential(rule, [&] { return rng.lognormal(0.0, 0.8); });
    counts.push_back(r.count);
  }
  EXPECT_EQ(counts[0], counts[1]);
  EXPECT_GT(counts[0], 64u);
  EXPECT_LT(counts[0], 100'000u);
}

TEST(AdaptiveStop, TrialCountIsMonotoneInTargetWidth) {
  std::size_t prev = 0;
  for (const double target : {0.2, 0.1, 0.05, 0.025}) {
    support::Rng rng(7);  // same stream for every target
    const StopRule rule = StopRule::absolute(target, 1'000'000, 64);
    const StoppedRun r =
        run_sequential(rule, [&] { return rng.normal(5.0, 1.0); });
    EXPECT_GE(r.count, prev) << "target " << target;
    prev = r.count;
  }
  EXPECT_GT(prev, 64u);  // the tightest target did real work
}

TEST(AdaptiveStop, StoppedCoverageWithinNominalAcrossGenerators) {
  struct Generator {
    const char* name;
    double true_mean;
    double target;
    std::function<double(support::Rng&)> draw;
  };
  const std::vector<Generator> generators = {
      {"normal", 5.0, 0.10,
       [](support::Rng& rng) { return rng.normal(5.0, 1.0); }},
      {"lognormal", std::exp(0.125), 0.06,
       [](support::Rng& rng) { return rng.lognormal(0.0, 0.5); }},
      {"trimodal", 0.5 * 1.0 + 0.3 * 2.0 + 0.2 * 4.0, 0.10,
       [](support::Rng& rng) {
         const double u = rng.uniform();
         if (u < 0.5) return rng.normal(1.0, 0.1);
         if (u < 0.8) return rng.normal(2.0, 0.15);
         return rng.normal(4.0, 0.2);
       }}};
  constexpr std::size_t kReps = 500;
  for (const Generator& g : generators) {
    const StopRule rule = StopRule::absolute(g.target, 200'000, 64);
    std::size_t covered = 0;
    for (std::size_t rep = 0; rep < kReps; ++rep) {
      support::Rng rng(0xC0FFEEu + 7919 * rep);
      const StoppedRun r =
          run_sequential(rule, [&] { return g.draw(rng); });
      EXPECT_LT(r.count, 200'000u) << g.name;  // target was reachable
      if (std::abs(r.mean - g.true_mean) <= r.ci) ++covered;
    }
    const double coverage = double(covered) / double(kReps);
    EXPECT_NEAR(coverage, kNominal, 0.03)
        << g.name << " stopped-CI coverage " << coverage;
  }
}

TEST(AdaptiveQuantile, RankBoundsBracketTheQuantile) {
  const QuantileRanks r = quantile_ci_ranks(1000, 0.5, 2.0);
  ASSERT_TRUE(r.valid);
  EXPECT_LT(r.lo, 499u);
  EXPECT_GT(r.hi, 499u);
  EXPECT_LT(r.hi, 1000u);
  // Too few samples for a two-sided bracket on an extreme quantile.
  EXPECT_FALSE(quantile_ci_ranks(10, 0.99, 2.0).valid);
}

TEST(AdaptiveQuantile, SequentialMedianStopsAndCoversTruth) {
  constexpr double kTrueMedian = 5.0;
  constexpr std::size_t kReps = 300;
  const StopRule rule = StopRule::absolute(0.15, 100'000, 64);
  std::size_t covered = 0;
  std::size_t count0 = 0;
  for (std::size_t rep = 0; rep < kReps; ++rep) {
    support::Rng rng(0xABCDu + 104'729 * rep);
    SequentialQuantile med(0.5, rule);
    for (;;) {
      const std::size_t width = next_block_width(med.count(), rule, 1024);
      if (width == 0) break;
      for (std::size_t i = 0; i < width; ++i) {
        med.add(rng.normal(kTrueMedian, 1.0));
      }
      if (med.should_stop()) break;
    }
    EXPECT_TRUE(med.precision_met());
    EXPECT_LE(med.ci_halfwidth(), 0.15);
    if (rep == 0) {
      count0 = med.count();
    } else if (rep == 1) {
      // determinism spot-check needs rep 0's seed; re-run it instead
      support::Rng rng0(0xABCDu);
      SequentialQuantile again(0.5, rule);
      for (;;) {
        const std::size_t width =
            next_block_width(again.count(), rule, 1024);
        if (width == 0) break;
        for (std::size_t i = 0; i < width; ++i) {
          again.add(rng0.normal(kTrueMedian, 1.0));
        }
        if (again.should_stop()) break;
      }
      EXPECT_EQ(again.count(), count0);
    }
    if (std::abs(med.value() - kTrueMedian) <= med.ci_halfwidth()) {
      ++covered;
    }
  }
  // Order-statistic brackets are conservative; require at least nominal
  // minus sampling slack.
  EXPECT_GT(double(covered) / double(kReps), kNominal - 0.035);
}

}  // namespace
}  // namespace sspred::stats

namespace sspred::model {
namespace {

using stoch::Dependence;
using stoch::StochasticValue;

/// A small but operator-rich stochastic model: sum + quotient + product
/// over two parameters, nothing degenerate.
ir::Program test_program() {
  const auto expr = model::add(
      model::quotient(model::constant(StochasticValue(4.0)),
                      model::param("load")),
      model::mul(model::param("bw"),
                 model::constant(StochasticValue(1.0, 0.3))));
  return model::compile(*expr);
}

ir::SlotEnvironment bind_env(const ir::Program& prog, double load_mean,
                             double bw_mean) {
  ir::SlotEnvironment env = prog.make_environment();
  env.bind(prog.slot("load"), StochasticValue(load_mean, 0.2));
  env.bind(prog.slot("bw"), StochasticValue(bw_mean, 0.1));
  return env;
}

TEST(AdaptiveEngine, FixedRuleBitExactAgainstSampleTrials) {
  const ir::Program prog = test_program();
  const ir::SlotEnvironment env = bind_env(prog, 0.8, 0.5);
  for (const std::size_t trials :
       {std::size_t{2}, std::size_t{37}, std::size_t{1024},
        std::size_t{2 * 1024 + 452}}) {
    support::Rng rng_a(42);
    support::Rng rng_b(42);
    ir::EvalWorkspace ws_a, ws_b;
    const ir::AdaptiveResult adaptive = prog.sample_adaptive(
        env, rng_a, stats::StopRule::fixed(trials), ws_a);
    const StochasticValue direct =
        prog.sample_trials(env, rng_b, trials, ws_b);
    EXPECT_EQ(adaptive.trials, trials);
    EXPECT_TRUE(adaptive.converged);
    EXPECT_DOUBLE_EQ(adaptive.value.mean(), direct.mean()) << trials;
    EXPECT_DOUBLE_EQ(adaptive.value.halfwidth(), direct.halfwidth())
        << trials;
    EXPECT_DOUBLE_EQ(rng_a.uniform(), rng_b.uniform())
        << trials << " rng state";
  }
}

TEST(AdaptiveEngine, PrecisionRunStopsEarlyAndMeetsTarget) {
  const ir::Program prog = test_program();
  const ir::SlotEnvironment env = bind_env(prog, 0.8, 0.5);
  support::Rng rng(7);
  const stats::StopRule rule = stats::StopRule::relative_width(0.05, 50'000);
  const ir::AdaptiveResult res = prog.sample_adaptive(env, rng, rule);
  EXPECT_TRUE(res.converged);
  EXPECT_GE(res.trials, rule.min_trials);
  EXPECT_LT(res.trials, 50'000u);
  EXPECT_LE(res.ci_halfwidth, 0.05 * std::abs(res.value.mean()));
}

TEST(AdaptiveEngine, MaxClampReportsUnconverged) {
  const ir::Program prog = test_program();
  const ir::SlotEnvironment env = bind_env(prog, 0.8, 0.5);
  support::Rng rng(7);
  const ir::AdaptiveResult res = prog.sample_adaptive(
      env, rng, stats::StopRule::absolute(1e-12, 256, 64));
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.trials, 256u);
  EXPECT_GT(res.ci_halfwidth, 1e-12);
}

TEST(AdaptiveEngine, PointProgramShortCircuitsWithoutDraws) {
  const auto expr = model::add(model::constant(StochasticValue(2.0)),
                               model::constant(StochasticValue(3.0)));
  const ir::Program prog = model::compile(*expr);
  const ir::SlotEnvironment env = prog.make_environment();
  support::Rng rng(5);
  support::Rng untouched(5);
  const ir::AdaptiveResult res = prog.sample_adaptive(
      env, rng, stats::StopRule::relative_width(0.01, 10'000));
  EXPECT_DOUBLE_EQ(res.value.mean(), 5.0);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.trials, 0u);
  EXPECT_DOUBLE_EQ(rng.uniform(), untouched.uniform());
}

TEST(AdaptiveEngine, FusedLaneRetirementBitExactVsSolo) {
  // Mixed rules chosen so lanes retire at very different checkpoints:
  // easy relative targets, a hard absolute target that runs to its max
  // clamp, and fixed counts that must follow the sample_trials schedule.
  const ir::Program prog = test_program();
  const std::vector<stats::StopRule> rules = {
      stats::StopRule::relative_width(0.10, 20'000, 64),   // retires fast
      stats::StopRule::fixed(600),
      stats::StopRule::absolute(1e-9, 3'000, 64),          // clamps
      stats::StopRule::relative_width(0.02, 20'000, 128),  // mid
      stats::StopRule::fixed(2 * 1024 + 452),
  };
  const std::size_t lanes = rules.size();
  ir::LaneEnvironment fused = prog.make_lane_environment(lanes);
  std::vector<ir::SlotEnvironment> solos;
  std::vector<support::Rng> rngs;
  std::vector<support::Rng> solo_rngs;
  for (std::size_t k = 0; k < lanes; ++k) {
    const double load = 0.6 + 0.05 * double(k);
    const double bw = 0.4 + 0.03 * double(k);
    fused.bind(k, prog.slot("load"), StochasticValue(load, 0.2));
    fused.bind(k, prog.slot("bw"), StochasticValue(bw, 0.1));
    solos.push_back(bind_env(prog, load, bw));
    rngs.emplace_back(900 + 31 * k);
    solo_rngs.emplace_back(900 + 31 * k);
  }
  ir::EvalWorkspace ws, solo_ws;
  std::vector<ir::AdaptiveResult> out(lanes);
  prog.sample_adaptive_fused(fused, rngs, rules, ws, out);
  for (std::size_t k = 0; k < lanes; ++k) {
    const ir::AdaptiveResult solo =
        prog.sample_adaptive(solos[k], solo_rngs[k], rules[k], solo_ws);
    EXPECT_EQ(out[k].trials, solo.trials) << "lane " << k;
    EXPECT_EQ(out[k].converged, solo.converged) << "lane " << k;
    EXPECT_DOUBLE_EQ(out[k].value.mean(), solo.value.mean()) << "lane " << k;
    EXPECT_DOUBLE_EQ(out[k].value.halfwidth(), solo.value.halfwidth())
        << "lane " << k;
    EXPECT_DOUBLE_EQ(out[k].ci_halfwidth, solo.ci_halfwidth) << "lane " << k;
    EXPECT_DOUBLE_EQ(rngs[k].uniform(), solo_rngs[k].uniform())
        << "lane " << k << " rng state";
  }
  // The clamped lane really did clamp and the easy lane really retired.
  EXPECT_EQ(out[2].trials, 3'000u);
  EXPECT_FALSE(out[2].converged);
  EXPECT_LT(out[0].trials, out[2].trials);
}

}  // namespace
}  // namespace sspred::model
