// Unit tests for the MPI-like message-passing layer.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "mpi/comm.hpp"
#include "support/error.hpp"

namespace sspred::mpi {
namespace {

struct Fixture {
  sim::Engine engine;
  cluster::Platform platform;
  Comm comm;

  explicit Fixture(std::size_t ranks)
      : platform(engine, cluster::dedicated_platform(ranks), 42),
        comm(engine, platform) {}
};

TEST(Comm, PingPongDeliversPayload) {
  Fixture f(2);
  Payload received;
  f.comm.launch([&](RankCtx ctx) -> sim::Process {
    if (ctx.rank() == 0) {
      ctx.send(1, 7, {1.0, 2.0, 3.0});
    } else {
      Message m = co_await ctx.recv(0, 7);
      received = m.data;
      EXPECT_EQ(m.source, 0);
      EXPECT_EQ(m.tag, 7);
    }
    co_return;
  });
  f.engine.run();
  EXPECT_EQ(received, (Payload{1.0, 2.0, 3.0}));
  EXPECT_EQ(f.comm.messages_delivered(), 1u);
}

TEST(Comm, MessageTransferTakesPositiveTime) {
  Fixture f(2);
  double recv_time = -1.0;
  f.comm.launch([&](RankCtx ctx) -> sim::Process {
    if (ctx.rank() == 0) {
      ctx.send(1, 0, Payload(10'000, 1.0));  // 80 KB
    } else {
      (void)co_await ctx.recv(0, 0);
      recv_time = ctx.now();
    }
    co_return;
  });
  f.engine.run();
  // 80 KB at 1.25 MB/s ≈ 64 ms plus latency.
  EXPECT_GT(recv_time, 0.05);
  EXPECT_LT(recv_time, 0.2);
}

TEST(Comm, TagMatchingSelectsRightMessage) {
  Fixture f(2);
  std::vector<double> got;
  f.comm.launch([&](RankCtx ctx) -> sim::Process {
    if (ctx.rank() == 0) {
      ctx.send(1, 5, {5.0});
      ctx.send(1, 9, {9.0});
    } else {
      Message m9 = co_await ctx.recv(0, 9);  // request the later tag first
      Message m5 = co_await ctx.recv(0, 5);
      got = {m9.data[0], m5.data[0]};
    }
    co_return;
  });
  f.engine.run();
  EXPECT_EQ(got, (std::vector<double>{9.0, 5.0}));
}

TEST(Comm, WildcardSourceAndTag) {
  Fixture f(3);
  std::vector<int> sources;
  f.comm.launch([&](RankCtx ctx) -> sim::Process {
    if (ctx.rank() == 0) {
      for (int i = 1; i < 3; ++i) {
        Message m = co_await ctx.recv(kAnySource, kAnyTag);
        sources.push_back(m.source);
      }
    } else {
      ctx.send(0, ctx.rank() * 10, {static_cast<double>(ctx.rank())});
    }
    co_return;
  });
  f.engine.run();
  ASSERT_EQ(sources.size(), 2u);
  EXPECT_NE(sources[0], sources[1]);
}

TEST(Comm, SameTagFifoOrderPreserved) {
  Fixture f(2);
  std::vector<double> got;
  f.comm.launch([&](RankCtx ctx) -> sim::Process {
    if (ctx.rank() == 0) {
      for (int i = 0; i < 4; ++i) {
        ctx.send(1, 0, {static_cast<double>(i)});
      }
    } else {
      for (int i = 0; i < 4; ++i) {
        Message m = co_await ctx.recv(0, 0);
        got.push_back(m.data[0]);
      }
    }
    co_return;
  });
  f.engine.run();
  EXPECT_EQ(got, (std::vector<double>{0.0, 1.0, 2.0, 3.0}));
}

TEST(Comm, BarrierSynchronizesRanks) {
  Fixture f(3);
  std::vector<double> after_times;
  f.comm.launch([&](RankCtx ctx) -> sim::Process {
    // Stagger arrival: rank r computes r dedicated-seconds first.
    if (ctx.rank() > 0) {
      co_await ctx.compute(static_cast<double>(ctx.rank()));
    }
    co_await ctx.barrier();
    after_times.push_back(ctx.now());
  });
  f.engine.run();
  ASSERT_EQ(after_times.size(), 3u);
  for (double t : after_times) {
    EXPECT_NEAR(t, after_times[0], 1e-9);  // all released together
    EXPECT_GE(t, 2.0);                     // not before the last arriver
  }
}

TEST(Comm, BarrierReusableAcrossPhases) {
  Fixture f(2);
  int phase_count = 0;
  f.comm.launch([&](RankCtx ctx) -> sim::Process {
    for (int i = 0; i < 3; ++i) {
      co_await ctx.compute(0.1 * (ctx.rank() + 1));
      co_await ctx.barrier();
      if (ctx.rank() == 0) ++phase_count;
    }
  });
  f.engine.run();
  EXPECT_EQ(phase_count, 3);
}

TEST(Comm, AllreduceSumAgreesOnAllRanks) {
  Fixture f(4);
  std::vector<double> results(4, 0.0);
  f.comm.launch([&](RankCtx ctx) -> sim::Process {
    const double v = static_cast<double>(ctx.rank() + 1);
    results[static_cast<std::size_t>(ctx.rank())] =
        co_await ctx.allreduce_sum(v);
  });
  f.engine.run();
  for (double r : results) EXPECT_DOUBLE_EQ(r, 10.0);
}

TEST(Comm, AllreduceMaxAgreesOnAllRanks) {
  Fixture f(3);
  std::vector<double> results(3, 0.0);
  f.comm.launch([&](RankCtx ctx) -> sim::Process {
    const double v = ctx.rank() == 1 ? 42.0 : 1.0;
    results[static_cast<std::size_t>(ctx.rank())] =
        co_await ctx.allreduce_max(v);
  });
  f.engine.run();
  for (double r : results) EXPECT_DOUBLE_EQ(r, 42.0);
}

TEST(Comm, GatherCollectsInRankOrder) {
  Fixture f(3);
  Payload gathered;
  f.comm.launch([&](RankCtx ctx) -> sim::Process {
    Payload local{static_cast<double>(ctx.rank()),
                  static_cast<double>(ctx.rank() * 10)};
    Payload all = co_await ctx.gather(std::move(local));
    if (ctx.rank() == 0) gathered = std::move(all);
  });
  f.engine.run();
  EXPECT_EQ(gathered, (Payload{0.0, 0.0, 1.0, 10.0, 2.0, 20.0}));
}

TEST(Comm, BcastDistributesFromRoot) {
  Fixture f(4);
  std::vector<Payload> got(4);
  f.comm.launch([&](RankCtx ctx) -> sim::Process {
    Payload data;
    if (ctx.rank() == 0) data = {3.14, 2.71};
    got[static_cast<std::size_t>(ctx.rank())] =
        co_await ctx.bcast(std::move(data));
  });
  f.engine.run();
  for (const auto& p : got) EXPECT_EQ(p, (Payload{3.14, 2.71}));
}

TEST(Comm, ComputeStretchesWithAvailability) {
  sim::Engine engine;
  cluster::PlatformSpec spec = cluster::dedicated_platform(1);
  cluster::Platform platform(engine, spec, 1);
  platform.machine(0).set_trace(machine::LoadTrace::constant(0.5));
  Comm comm(engine, platform);
  double done = -1.0;
  comm.launch([&](RankCtx ctx) -> sim::Process {
    co_await ctx.compute(3.0);
    done = ctx.now();
  });
  engine.run();
  EXPECT_DOUBLE_EQ(done, 6.0);
}

TEST(Comm, SendValidation) {
  Fixture f(2);
  f.comm.launch([&](RankCtx ctx) -> sim::Process {
    if (ctx.rank() == 0) {
      EXPECT_THROW(ctx.send(5, 0, {1.0}), support::Error);   // bad rank
      EXPECT_THROW(ctx.send(1, -3, {1.0}), support::Error);  // bad tag
    }
    co_return;
  });
  f.engine.run();
}

TEST(Comm, SendRecvCrossExchangeNoDeadlock) {
  // The SOR pattern: both neighbours send first, then receive.
  Fixture f(2);
  std::vector<double> got(2, -1.0);
  f.comm.launch([&](RankCtx ctx) -> sim::Process {
    const int other = 1 - ctx.rank();
    ctx.send(other, 0, {static_cast<double>(ctx.rank())});
    Message m = co_await ctx.recv(other, 0);
    got[static_cast<std::size_t>(ctx.rank())] = m.data[0];
  });
  f.engine.run();
  EXPECT_DOUBLE_EQ(got[0], 1.0);
  EXPECT_DOUBLE_EQ(got[1], 0.0);
}

}  // namespace
}  // namespace sspred::mpi
