// Unit tests for the normality / goodness-of-fit tests used to justify the
// paper's normal-approximation decisions.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/normality.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace sspred::stats {
namespace {

std::vector<double> normal_sample(std::size_t n, double mu, double sigma,
                                  std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) xs.push_back(rng.normal(mu, sigma));
  return xs;
}

std::vector<double> uniform_sample(std::size_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) xs.push_back(rng.uniform());
  return xs;
}

std::vector<double> pareto_sample(std::size_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) xs.push_back(rng.pareto(1.0, 1.5));
  return xs;
}

TEST(KolmogorovQ, KnownValues) {
  EXPECT_DOUBLE_EQ(kolmogorov_q(0.0), 1.0);
  EXPECT_NEAR(kolmogorov_q(1.36), 0.049, 0.002);  // classic 5% critical point
  EXPECT_LT(kolmogorov_q(2.0), 0.001);
}

TEST(ChiSquareSf, KnownValues) {
  EXPECT_NEAR(chi_square_sf(0.0, 3.0), 1.0, 1e-12);
  // Median of chi-square(2) is 2 ln 2.
  EXPECT_NEAR(chi_square_sf(2.0 * std::log(2.0), 2.0), 0.5, 1e-9);
  // 95th percentile of chi-square(9) is about 16.92.
  EXPECT_NEAR(chi_square_sf(16.92, 9.0), 0.05, 0.002);
}

TEST(KsTest, AcceptsTrueNormal) {
  const auto xs = normal_sample(500, 3.0, 2.0, 11);
  const GofResult r = ks_test_normal(xs, 3.0, 2.0);
  EXPECT_FALSE(r.reject_at_05);
  EXPECT_GT(r.p_value, 0.05);
}

TEST(KsTest, RejectsWrongParameters) {
  const auto xs = normal_sample(500, 3.0, 2.0, 13);
  const GofResult r = ks_test_normal(xs, 5.0, 2.0);  // wrong mean
  EXPECT_TRUE(r.reject_at_05);
}

TEST(KsTest, RejectsUniform) {
  const auto xs = uniform_sample(500, 17);
  const GofResult r = ks_test_normal(xs, 0.5, 0.29);
  EXPECT_TRUE(r.reject_at_05);
}

TEST(Lilliefors, AcceptsNormalWithEstimatedParams) {
  const auto xs = normal_sample(400, -1.0, 0.5, 19);
  const GofResult r = lilliefors_test(xs);
  EXPECT_FALSE(r.reject_at_05);
}

TEST(Lilliefors, RejectsHeavyTail) {
  const auto xs = pareto_sample(400, 23);
  const GofResult r = lilliefors_test(xs);
  EXPECT_TRUE(r.reject_at_05);
}

TEST(AndersonDarling, AcceptsNormal) {
  const auto xs = normal_sample(400, 10.0, 3.0, 29);
  const GofResult r = anderson_darling_normal(xs);
  EXPECT_FALSE(r.reject_at_05);
}

TEST(AndersonDarling, RejectsPareto) {
  const auto xs = pareto_sample(400, 31);
  const GofResult r = anderson_darling_normal(xs);
  EXPECT_TRUE(r.reject_at_05);
  EXPECT_GT(r.statistic, 1.0);
}

TEST(ChiSquareGof, AcceptsNormal) {
  const auto xs = normal_sample(1'000, 0.0, 1.0, 37);
  const GofResult r = chi_square_normal(xs, 0.0, 1.0);
  EXPECT_FALSE(r.reject_at_05);
}

TEST(ChiSquareGof, RejectsShiftedNormal) {
  const auto xs = normal_sample(1'000, 1.0, 1.0, 41);
  const GofResult r = chi_square_normal(xs, 0.0, 1.0);
  EXPECT_TRUE(r.reject_at_05);
}

TEST(ChiSquareGof, RequiresEnoughSamples) {
  const auto xs = normal_sample(20, 0.0, 1.0, 43);
  EXPECT_THROW((void)chi_square_normal(xs, 0.0, 1.0), support::Error);
}

TEST(JarqueBera, AcceptsNormalRejectsSkewed) {
  EXPECT_FALSE(jarque_bera(normal_sample(2'000, 5.0, 2.0, 47)).reject_at_05);
  EXPECT_TRUE(jarque_bera(pareto_sample(2'000, 53)).reject_at_05);
}

// Property sweep: every test accepts normal samples across sizes & scales.
struct NormCase {
  std::size_t n;
  double mu;
  double sigma;
};

class AcceptsNormalSweep : public ::testing::TestWithParam<NormCase> {};

TEST_P(AcceptsNormalSweep, AllTestsAccept) {
  const auto& c = GetParam();
  const auto xs = normal_sample(c.n, c.mu, c.sigma, 1000 + c.n);
  EXPECT_FALSE(ks_test_normal(xs, c.mu, c.sigma).reject_at_05);
  EXPECT_FALSE(lilliefors_test(xs).reject_at_05);
  EXPECT_FALSE(anderson_darling_normal(xs).reject_at_05);
  EXPECT_FALSE(jarque_bera(xs).reject_at_05);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AcceptsNormalSweep,
    ::testing::Values(NormCase{100, 0.0, 1.0}, NormCase{250, 12.0, 0.6},
                      NormCase{500, -4.0, 10.0}, NormCase{2'000, 0.48, 0.025},
                      NormCase{5'000, 5.25, 0.4}));

TEST(GofGuards, MinimumSampleSizes) {
  const std::vector<double> tiny{1.0, 2.0, 3.0};
  EXPECT_THROW((void)ks_test_normal(tiny, 0.0, 1.0), support::Error);
  EXPECT_THROW((void)lilliefors_test(tiny), support::Error);
  EXPECT_THROW((void)anderson_darling_normal(tiny), support::Error);
  EXPECT_THROW((void)jarque_bera(tiny), support::Error);
}

}  // namespace
}  // namespace sspred::stats
