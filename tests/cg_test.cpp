// Tests for the Conjugate Gradient application (serial + distributed) and
// the KS two-sample check it motivated.
#include <gtest/gtest.h>

#include "sor/cg.hpp"
#include "sor/distributed.hpp"
#include "support/error.hpp"

namespace sspred::sor {
namespace {

TEST(SerialCg, ConvergesFastOnPoisson) {
  SerialCg cg(33);
  const std::size_t iters = cg.solve(500, 1e-10);
  EXPECT_LT(iters, 200u);
  EXPECT_LT(cg.residual_norm(), 1e-10);
  EXPECT_LT(cg.solution_error(), 1e-3);
}

TEST(SerialCg, ResidualDecreasesWithMoreIterations) {
  SerialCg a(25);
  (void)a.solve(5);
  SerialCg b(25);
  (void)b.solve(40);
  EXPECT_LT(b.residual_norm(), 0.1 * a.residual_norm());
}

TEST(DistributedCg, MatchesSerialConvergence) {
  CgConfig cfg;
  cfg.n = 33;
  cfg.max_iterations = 80;
  sim::Engine engine;
  cluster::Platform platform(engine, cluster::dedicated_platform(3), 5);
  const CgResult result = run_distributed_cg(engine, platform, cfg);

  SerialCg serial(cfg.n);
  (void)serial.solve(cfg.max_iterations);
  // Dot-product summation order differs across ranks; agreement is to
  // rounding, not bitwise.
  EXPECT_NEAR(result.residual, serial.residual_norm(),
              1e-8 + 1e-6 * serial.residual_norm());
  EXPECT_NEAR(result.solution_error, serial.solution_error(), 1e-8);
  EXPECT_EQ(result.iterations_run, cfg.max_iterations);
}

class CgRankSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CgRankSweep, ConvergesToToleranceOnAnyRankCount) {
  CgConfig cfg;
  cfg.n = 25;
  cfg.max_iterations = 300;
  cfg.tolerance = 1e-9;
  sim::Engine engine;
  cluster::Platform platform(engine,
                             cluster::dedicated_platform(GetParam()), 7);
  const CgResult result = run_distributed_cg(engine, platform, cfg);
  EXPECT_LT(result.residual, 1e-9);
  EXPECT_LT(result.iterations_run, 300u);
  EXPECT_LT(result.solution_error, 1e-2);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CgRankSweep, ::testing::Values(1, 2, 4, 5));

TEST(DistributedCg, AllreduceDominatesCommOnSmallGrids) {
  // CG's per-iteration collectives are latency-bound: on a small grid the
  // allreduce time exceeds the neighbour-exchange time.
  CgConfig cfg;
  cfg.n = 32;
  cfg.max_iterations = 30;
  cfg.real_numerics = false;
  sim::Engine engine;
  cluster::Platform platform(engine, cluster::dedicated_platform(4), 9);
  const CgResult result = run_distributed_cg(engine, platform, cfg);
  const auto& [comp, ghost, collective] = result.rank_totals[1];
  EXPECT_GT(collective, ghost);
  EXPECT_GT(comp, 0.0);
}

TEST(DistributedCg, CollectiveShareShrinksWithGridSize) {
  auto collective_share = [](std::size_t n) {
    CgConfig cfg;
    cfg.n = n;
    cfg.max_iterations = 20;
    cfg.real_numerics = false;
    sim::Engine engine;
    cluster::Platform platform(engine, cluster::dedicated_platform(4), 11);
    const CgResult r = run_distributed_cg(engine, platform, cfg);
    const auto& [comp, ghost, collective] = r.rank_totals[1];
    return collective / (comp + ghost + collective);
  };
  EXPECT_GT(collective_share(64), collective_share(1024));
}

TEST(DistributedCg, ProductionLoadStretchesRun) {
  CgConfig cfg;
  cfg.n = 256;
  cfg.max_iterations = 25;
  cfg.real_numerics = false;

  sim::Engine e1;
  cluster::Platform p1(e1, cluster::dedicated_platform(4), 13);
  const double t_ded = run_distributed_cg(e1, p1, cfg).total_time;

  cluster::PlatformSpec loaded = cluster::dedicated_platform(4);
  for (auto& h : loaded.hosts) {
    h.load = cluster::platform1_load(/*center_only=*/true);
  }
  sim::Engine e2;
  cluster::Platform p2(e2, loaded, 13);
  const double t_loaded = run_distributed_cg(e2, p2, cfg).total_time;
  EXPECT_GT(t_loaded, 1.3 * t_ded);
}

}  // namespace
}  // namespace sspred::sor
