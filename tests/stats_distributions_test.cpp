// Unit tests for analytic distributions, histograms and ECDFs.
#include <gtest/gtest.h>

#include <cmath>

#include "stats/distributions.hpp"
#include "stats/histogram.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace sspred::stats {
namespace {

TEST(NormalCdf, StandardValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.975, 1e-4);
  EXPECT_NEAR(normal_cdf(-1.96), 0.025, 1e-4);
  EXPECT_NEAR(normal_cdf(2.0) - normal_cdf(-2.0), 0.9545, 1e-4);
}

TEST(NormalPdf, PeakAndSymmetry) {
  EXPECT_NEAR(normal_pdf(0.0), 1.0 / std::sqrt(2.0 * M_PI), 1e-12);
  EXPECT_DOUBLE_EQ(normal_pdf(1.3), normal_pdf(-1.3));
}

class NormalQuantileRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(NormalQuantileRoundTrip, CdfOfQuantileIsIdentity) {
  const double p = GetParam();
  EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, NormalQuantileRoundTrip,
                         ::testing::Values(1e-6, 0.001, 0.025, 0.1, 0.3, 0.5,
                                           0.7, 0.9, 0.975, 0.999, 1.0 - 1e-6));

TEST(NormalQuantile, RejectsBoundaries) {
  EXPECT_THROW((void)normal_quantile(0.0), support::Error);
  EXPECT_THROW((void)normal_quantile(1.0), support::Error);
}

TEST(Normal, ProbabilityInTwoSigma) {
  const Normal n(10.0, 2.0);
  EXPECT_NEAR(n.probability_in(6.0, 14.0), 0.9545, 1e-4);
}

TEST(Normal, QuantileMatchesMeanAndSd) {
  const Normal n(5.0, 3.0);
  EXPECT_NEAR(n.quantile(0.5), 5.0, 1e-9);
  EXPECT_NEAR(n.quantile(normal_cdf(1.0)), 8.0, 1e-6);
}

TEST(Normal, RejectsNonPositiveSigma) {
  EXPECT_THROW(Normal(0.0, 0.0), support::Error);
  EXPECT_THROW(Normal(0.0, -1.0), support::Error);
}

TEST(Normal, PdfIntegratesToOne) {
  const Normal n(2.0, 1.5);
  double integral = 0.0;
  const double dx = 0.01;
  for (double x = -10.0; x < 14.0; x += dx) integral += n.pdf(x) * dx;
  EXPECT_NEAR(integral, 1.0, 1e-3);
}

TEST(LogNormal, MomentFactoryRoundTrip) {
  const LogNormal ln = LogNormal::from_moments(5.25, 0.8);
  EXPECT_NEAR(ln.mean(), 5.25, 1e-9);
  EXPECT_NEAR(ln.sd(), 0.8, 1e-9);
}

TEST(LogNormal, CdfZeroBelowSupport) {
  const LogNormal ln(0.0, 1.0);
  EXPECT_DOUBLE_EQ(ln.cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(ln.pdf(-1.0), 0.0);
  EXPECT_NEAR(ln.cdf(1.0), 0.5, 1e-12);  // median = exp(mu) = 1
}

TEST(LogNormal, QuantileRoundTrip) {
  const LogNormal ln(0.5, 0.7);
  for (double p : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(ln.cdf(ln.quantile(p)), p, 1e-9);
  }
}

TEST(Pareto, CdfAndQuantile) {
  const Pareto pa(1.0, 2.0);
  EXPECT_DOUBLE_EQ(pa.cdf(0.5), 0.0);
  EXPECT_NEAR(pa.cdf(2.0), 0.75, 1e-12);
  EXPECT_NEAR(pa.quantile(0.75), 2.0, 1e-12);
  EXPECT_NEAR(pa.mean(), 2.0, 1e-12);
}

TEST(Pareto, InfiniteMeanForSmallAlpha) {
  const Pareto pa(1.0, 0.9);
  EXPECT_TRUE(std::isinf(pa.mean()));
}

TEST(Exponential, Basics) {
  const Exponential e(2.0);
  EXPECT_DOUBLE_EQ(e.mean(), 0.5);
  EXPECT_NEAR(e.cdf(e.quantile(0.3)), 0.3, 1e-12);
  EXPECT_DOUBLE_EQ(e.cdf(-1.0), 0.0);
}

TEST(Histogram, BinsAndCounts) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);
  h.add(1.0);
  h.add(9.9);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_DOUBLE_EQ(h.bin_width(), 2.0);
  EXPECT_DOUBLE_EQ(h.center(0), 1.0);
}

TEST(Histogram, ClampsOutOfRangeIntoBoundaryBins) {
  Histogram h(0.0, 1.0, 2);
  h.add(-5.0);
  h.add(42.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, FromDataCoversSample) {
  support::Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 1'000; ++i) xs.push_back(rng.normal(5.0, 1.0));
  const Histogram h = Histogram::from_data(xs, 20);
  EXPECT_EQ(h.total(), xs.size());
  std::size_t sum = 0;
  for (std::size_t b = 0; b < h.bin_count(); ++b) sum += h.count(b);
  EXPECT_EQ(sum, xs.size());
}

TEST(Histogram, DensityIntegratesToOne) {
  support::Rng rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 5'000; ++i) xs.push_back(rng.normal());
  const Histogram h = Histogram::from_data(xs, 30);
  double integral = 0.0;
  for (double d : h.density()) integral += d * h.bin_width();
  EXPECT_NEAR(integral, 1.0, 1e-9);
}

TEST(Histogram, PercentagesSumTo100) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const Histogram h = Histogram::from_data(xs, 4);
  double sum = 0.0;
  for (double p : h.percentages()) sum += p;
  EXPECT_NEAR(sum, 100.0, 1e-9);
}

TEST(Histogram, EdgesAreUniform) {
  Histogram h(0.0, 4.0, 4);
  const auto e = h.edges();
  ASSERT_EQ(e.size(), 5u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(e[i + 1] - e[i], 1.0);
  }
}

TEST(Ecdf, StepsThroughSample) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const Ecdf F(xs);
  EXPECT_DOUBLE_EQ(F(0.5), 0.0);
  EXPECT_DOUBLE_EQ(F(1.0), 0.25);
  EXPECT_DOUBLE_EQ(F(2.5), 0.5);
  EXPECT_DOUBLE_EQ(F(4.0), 1.0);
  EXPECT_DOUBLE_EQ(F(100.0), 1.0);
}

TEST(Ecdf, QuantileInverts) {
  const std::vector<double> xs{10.0, 20.0, 30.0};
  const Ecdf F(xs);
  EXPECT_DOUBLE_EQ(F.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(F.quantile(0.5), 20.0);
  EXPECT_DOUBLE_EQ(F.quantile(1.0), 30.0);
}

TEST(Ecdf, ConvergesToTrueCdf) {
  support::Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 50'000; ++i) xs.push_back(rng.normal());
  const Ecdf F(xs);
  for (double z : {-1.5, -0.5, 0.0, 0.5, 1.5}) {
    EXPECT_NEAR(F(z), normal_cdf(z), 0.01);
  }
}

}  // namespace
}  // namespace sspred::stats
