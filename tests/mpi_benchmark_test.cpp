// Tests for the ping-pong parameter benchmark (DedBW / latency fitting).
#include <gtest/gtest.h>

#include "mpi/benchmark.hpp"
#include "support/error.hpp"

namespace sspred::mpi {
namespace {

TEST(PingPong, RecoversDedicatedSegmentParameters) {
  sim::Engine engine;
  cluster::Platform platform(engine, cluster::dedicated_platform(2), 3);
  const auto profile = measure_point_to_point(engine, platform);
  // 10 Mbit ethernet = 1.25e6 B/s; the paper's "determined statically".
  EXPECT_NEAR(profile.bandwidth, 1.25e6, 0.05 * 1.25e6);
  // One-way latency ≈ the segment's configured 1 ms.
  EXPECT_NEAR(profile.latency, 1.0e-3, 0.5e-3);
  EXPECT_EQ(profile.samples.size(), 25u);  // 5 sizes x 5 reps
}

TEST(PingPong, RecoversSwitchedLinkParameters) {
  cluster::PlatformSpec spec = cluster::dedicated_platform(2);
  spec.fabric = cluster::FabricKind::kSwitched;
  sim::Engine engine;
  cluster::Platform platform(engine, spec, 3);
  const auto profile = measure_point_to_point(engine, platform);
  EXPECT_NEAR(profile.bandwidth, spec.switched.link_bandwidth,
              0.05 * spec.switched.link_bandwidth);
  EXPECT_NEAR(profile.latency, spec.switched.latency, 0.5e-3);
}

TEST(PingPong, SeesCrossTrafficOnProductionSegment) {
  // On the loaded production segment the fitted bandwidth drops toward
  // the ~52% availability profile (Fig. 3).
  sim::Engine engine;
  cluster::PlatformSpec spec = cluster::dedicated_platform(2);
  spec.ethernet.availability = cluster::production_ethernet_availability();
  cluster::Platform platform(engine, spec, 5);
  const auto profile = measure_point_to_point(engine, platform);
  EXPECT_LT(profile.bandwidth, 0.85 * 1.25e6);
  EXPECT_GT(profile.bandwidth, 0.25 * 1.25e6);
}

TEST(PingPong, OneWayTimesGrowWithSize) {
  sim::Engine engine;
  cluster::Platform platform(engine, cluster::dedicated_platform(2), 7);
  const std::vector<std::size_t> sizes{1024, 8192, 65536};
  const auto profile =
      measure_point_to_point(engine, platform, 0, 1, sizes, 3);
  double prev_mean = 0.0;
  for (std::size_t s = 0; s < sizes.size(); ++s) {
    double mean = 0.0;
    for (std::size_t r = 0; r < 3; ++r) {
      mean += profile.samples[s * 3 + r].second;
    }
    mean /= 3.0;
    EXPECT_GT(mean, prev_mean);
    prev_mean = mean;
  }
}

TEST(PingPong, Validation) {
  sim::Engine engine;
  cluster::Platform platform(engine, cluster::dedicated_platform(2), 9);
  const std::vector<std::size_t> one{1024};
  EXPECT_THROW((void)measure_point_to_point(engine, platform, 0, 0),
               support::Error);
  EXPECT_THROW((void)measure_point_to_point(engine, platform, 0, 5),
               support::Error);
  EXPECT_THROW((void)measure_point_to_point(engine, platform, 0, 1, one),
               support::Error);
}

}  // namespace
}  // namespace sspred::mpi
